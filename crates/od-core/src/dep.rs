//! Dependency statements: order dependencies, order equivalences, order
//! compatibilities, and functional dependencies.
//!
//! * [`OrderDependency`] — `X ↦ Y` (Definition 4): any tuple ordering satisfying
//!   `ORDER BY X` also satisfies `ORDER BY Y`.
//! * [`OrderEquivalence`] — `X ↔ Y`: both `X ↦ Y` and `Y ↦ X`.
//! * [`OrderCompatibility`] — `X ~ Y` (Definition 5): `XY ↔ YX`.
//! * [`FunctionalDependency`] — `X → Y` over attribute *sets*; by Lemma 1 every
//!   OD implies the corresponding FD, and by Theorem 13 an FD corresponds to the
//!   OD `X' ↦ X'Y'` for arbitrary permutations `X'`, `Y'` of the two sides.

use crate::attr::{AttrId, Schema};
use crate::list::AttrList;
use crate::set::AttrSet;
use std::fmt;

/// An order dependency `X ↦ Y` ("X orders Y").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderDependency {
    /// Left-hand side list `X`.
    pub lhs: AttrList,
    /// Right-hand side list `Y`.
    pub rhs: AttrList,
}

impl OrderDependency {
    /// Build an OD from anything convertible into attribute lists.
    pub fn new(lhs: impl Into<AttrList>, rhs: impl Into<AttrList>) -> Self {
        OrderDependency {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The OD with both sides normalized (duplicate attributes removed, keeping
    /// first occurrences).  Normalization preserves the OD's meaning (axiom OD3).
    pub fn normalize(&self) -> Self {
        OrderDependency {
            lhs: self.lhs.normalize(),
            rhs: self.rhs.normalize(),
        }
    }

    /// The reversed statement `Y ↦ X`.
    pub fn reversed(&self) -> Self {
        OrderDependency {
            lhs: self.rhs.clone(),
            rhs: self.lhs.clone(),
        }
    }

    /// True if the OD is *syntactically trivial*: satisfied by every instance
    /// because the normalized right-hand side is a prefix of the normalized
    /// left-hand side (e.g. `XY ↦ X`, `X ↦ []`, `[A,B,A] ↦ [A,B]`).
    ///
    /// This is a sufficient (not necessary) syntactic condition; full triviality
    /// checking (`∅ ⊨ X ↦ Y`) is provided by the `od-infer` crate's decider.
    pub fn is_syntactically_trivial(&self) -> bool {
        self.rhs.normalize().is_prefix_of(&self.lhs.normalize())
    }

    /// All attributes mentioned on either side.
    pub fn attributes(&self) -> AttrSet {
        let mut s = self.lhs.to_set();
        s.extend(self.rhs.to_set());
        s
    }

    /// The functional dependency `set(X) → set(Y)` implied by this OD (Lemma 1).
    pub fn implied_fd(&self) -> FunctionalDependency {
        FunctionalDependency::new(self.lhs.to_set(), self.rhs.to_set())
    }

    /// The order-compatibility fragment `X ~ Y` of this OD (Theorem 15 splits an
    /// OD into its FD part and its order-compatibility part).
    pub fn compatibility_part(&self) -> OrderCompatibility {
        OrderCompatibility::new(self.lhs.clone(), self.rhs.clone())
    }

    /// Render with attribute names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayWithSchema<'a> {
        DisplayWithSchema {
            schema,
            kind: StatementRef::Od(self),
        }
    }
}

impl fmt::Display for OrderDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ↦ {}", self.lhs, self.rhs)
    }
}

/// An order equivalence `X ↔ Y` (both `X ↦ Y` and `Y ↦ X`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderEquivalence {
    /// Left list.
    pub lhs: AttrList,
    /// Right list.
    pub rhs: AttrList,
}

impl OrderEquivalence {
    /// Build an order equivalence.
    pub fn new(lhs: impl Into<AttrList>, rhs: impl Into<AttrList>) -> Self {
        OrderEquivalence {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The two ODs whose conjunction this equivalence denotes.
    pub fn as_ods(&self) -> [OrderDependency; 2] {
        [
            OrderDependency::new(self.lhs.clone(), self.rhs.clone()),
            OrderDependency::new(self.rhs.clone(), self.lhs.clone()),
        ]
    }

    /// Render with attribute names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayWithSchema<'a> {
        DisplayWithSchema {
            schema,
            kind: StatementRef::Equiv(self),
        }
    }
}

impl fmt::Display for OrderEquivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ↔ {}", self.lhs, self.rhs)
    }
}

/// An order compatibility `X ~ Y`, defined as `XY ↔ YX` (Definition 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderCompatibility {
    /// Left list.
    pub lhs: AttrList,
    /// Right list.
    pub rhs: AttrList,
}

impl OrderCompatibility {
    /// Build an order compatibility statement.
    pub fn new(lhs: impl Into<AttrList>, rhs: impl Into<AttrList>) -> Self {
        OrderCompatibility {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The defining order equivalence `XY ↔ YX`.
    pub fn as_equivalence(&self) -> OrderEquivalence {
        OrderEquivalence::new(self.lhs.concat(&self.rhs), self.rhs.concat(&self.lhs))
    }

    /// The two ODs whose conjunction this compatibility denotes.
    pub fn as_ods(&self) -> [OrderDependency; 2] {
        self.as_equivalence().as_ods()
    }

    /// Render with attribute names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayWithSchema<'a> {
        DisplayWithSchema {
            schema,
            kind: StatementRef::Compat(self),
        }
    }
}

impl fmt::Display for OrderCompatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~ {}", self.lhs, self.rhs)
    }
}

/// A functional dependency `X → Y` over attribute sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionalDependency {
    /// Determinant set.
    pub lhs: AttrSet,
    /// Dependent set.
    pub rhs: AttrSet,
}

impl FunctionalDependency {
    /// Build an FD from attribute collections.
    pub fn new(
        lhs: impl IntoIterator<Item = AttrId>,
        rhs: impl IntoIterator<Item = AttrId>,
    ) -> Self {
        FunctionalDependency {
            lhs: lhs.into_iter().collect(),
            rhs: rhs.into_iter().collect(),
        }
    }

    /// True if the FD is trivial (`Y ⊆ X`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// All attributes mentioned.
    pub fn attributes(&self) -> AttrSet {
        self.lhs.union(self.rhs)
    }

    /// The canonical OD representative of this FD per Theorem 13: `X' ↦ X'Y'`,
    /// where `X'`/`Y'` enumerate the sets in ascending attribute-id order.
    /// (Any other permutation is equivalent by the Permutation theorem.)
    pub fn to_od(&self) -> OrderDependency {
        let lhs: AttrList = self.lhs.iter().collect();
        let rhs: AttrList = lhs.concat(&self.rhs.iter().collect());
        OrderDependency { lhs, rhs }
    }

    /// Render with attribute names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayWithSchema<'a> {
        DisplayWithSchema {
            schema,
            kind: StatementRef::Fd(self),
        }
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render = |s: &AttrSet| {
            let parts: Vec<String> = s.iter().map(|a| a.to_string()).collect();
            format!("{{{}}}", parts.join(", "))
        };
        write!(f, "{} → {}", render(&self.lhs), render(&self.rhs))
    }
}

enum StatementRef<'a> {
    Od(&'a OrderDependency),
    Equiv(&'a OrderEquivalence),
    Compat(&'a OrderCompatibility),
    Fd(&'a FunctionalDependency),
}

/// Helper returned by the `display` methods: renders a dependency with attribute
/// names resolved against a schema.
pub struct DisplayWithSchema<'a> {
    schema: &'a Schema,
    kind: StatementRef<'a>,
}

impl fmt::Display for DisplayWithSchema<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let list = |l: &AttrList| {
            let names: Vec<&str> = l.iter().map(|a| self.schema.attr_name(a)).collect();
            format!("[{}]", names.join(", "))
        };
        let set = |s: &AttrSet| {
            let names: Vec<&str> = s.iter().map(|a| self.schema.attr_name(a)).collect();
            format!("{{{}}}", names.join(", "))
        };
        match self.kind {
            StatementRef::Od(od) => write!(f, "{} ↦ {}", list(&od.lhs), list(&od.rhs)),
            StatementRef::Equiv(eq) => write!(f, "{} ↔ {}", list(&eq.lhs), list(&eq.rhs)),
            StatementRef::Compat(c) => write!(f, "{} ~ {}", list(&c.lhs), list(&c.rhs)),
            StatementRef::Fd(fd) => write!(f, "{} → {}", set(&fd.lhs), set(&fd.rhs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn od_construction_and_normalization() {
        let od = OrderDependency::new(l(&[0, 1, 0]), l(&[2, 2]));
        let n = od.normalize();
        assert_eq!(n.lhs, l(&[0, 1]));
        assert_eq!(n.rhs, l(&[2]));
        assert_eq!(od.reversed().lhs, od.rhs);
    }

    #[test]
    fn syntactic_triviality() {
        // XY ↦ X is the Reflexivity axiom shape.
        assert!(OrderDependency::new(l(&[0, 1]), l(&[0])).is_syntactically_trivial());
        assert!(OrderDependency::new(l(&[0, 1]), l(&[])).is_syntactically_trivial());
        assert!(OrderDependency::new(l(&[0, 1, 0]), l(&[0, 1])).is_syntactically_trivial());
        assert!(!OrderDependency::new(l(&[0]), l(&[1])).is_syntactically_trivial());
        assert!(!OrderDependency::new(l(&[0, 1]), l(&[1])).is_syntactically_trivial());
    }

    #[test]
    fn od_implies_fd_shape() {
        let od = OrderDependency::new(l(&[1, 0]), l(&[2, 0]));
        let fd = od.implied_fd();
        assert_eq!(fd.lhs, l(&[0, 1]).to_set());
        assert_eq!(fd.rhs, l(&[0, 2]).to_set());
    }

    #[test]
    fn compatibility_unfolds_to_equivalence_of_concatenations() {
        let c = OrderCompatibility::new(l(&[0]), l(&[1, 2]));
        let eq = c.as_equivalence();
        assert_eq!(eq.lhs, l(&[0, 1, 2]));
        assert_eq!(eq.rhs, l(&[1, 2, 0]));
        let ods = c.as_ods();
        assert_eq!(ods[0].lhs, l(&[0, 1, 2]));
        assert_eq!(ods[1].lhs, l(&[1, 2, 0]));
    }

    #[test]
    fn equivalence_unfolds_to_two_ods() {
        let eq = OrderEquivalence::new(l(&[0]), l(&[1]));
        let [a, b] = eq.as_ods();
        assert_eq!(a, OrderDependency::new(l(&[0]), l(&[1])));
        assert_eq!(b, OrderDependency::new(l(&[1]), l(&[0])));
    }

    #[test]
    fn fd_triviality_and_od_embedding() {
        let fd = FunctionalDependency::new([AttrId(0), AttrId(1)], [AttrId(1)]);
        assert!(fd.is_trivial());
        let fd2 = FunctionalDependency::new([AttrId(0)], [AttrId(2)]);
        assert!(!fd2.is_trivial());
        let od = fd2.to_od();
        assert_eq!(od.lhs, l(&[0]));
        assert_eq!(od.rhs, l(&[0, 2]));
    }

    #[test]
    fn display_with_schema_uses_names() {
        let mut s = Schema::new("t");
        let a = s.add_attr("year");
        let b = s.add_attr("month");
        let od = OrderDependency::new(vec![a], vec![b]);
        assert_eq!(od.display(&s).to_string(), "[year] ↦ [month]");
        let eq = OrderEquivalence::new(vec![a], vec![b]);
        assert_eq!(eq.display(&s).to_string(), "[year] ↔ [month]");
        let c = OrderCompatibility::new(vec![a], vec![b]);
        assert_eq!(c.display(&s).to_string(), "[year] ~ [month]");
        let fd = FunctionalDependency::new([a], [b]);
        assert_eq!(fd.display(&s).to_string(), "{year} → {month}");
    }

    #[test]
    fn plain_display_uses_ids() {
        let od = OrderDependency::new(l(&[0]), l(&[1]));
        assert_eq!(od.to_string(), "[#0] ↦ [#1]");
        let fd = FunctionalDependency::new([AttrId(0)], [AttrId(1)]);
        assert_eq!(fd.to_string(), "{#0} → {#1}");
    }

    #[test]
    fn attributes_collects_both_sides() {
        let od = OrderDependency::new(l(&[0, 1]), l(&[2]));
        let attrs = od.attributes();
        assert_eq!(attrs.len(), 3);
        let fd = FunctionalDependency::new([AttrId(4)], [AttrId(5)]);
        assert_eq!(fd.attributes().len(), 2);
    }
}
