//! # od-optimizer — order-dependency-driven query rewrites
//!
//! The query-optimization side of *Fundamentals of Order Dependencies*:
//!
//! * [`registry`] — declared OD/FD constraints per table (the paper's OD check
//!   constraint) and the interesting-order satisfaction test (`ℳ ⊨ provided ↦
//!   required`) used for sort elimination;
//! * [`reduce`] — `Reduce` (FD-only, Simmen et al. \[17\]) and `Reduce-2`
//!   (OD-aware, Section 2.3) order-by minimization plus group-by minimization;
//! * [`star`] — planners for the two motivating query shapes (Example 1
//!   aggregation queries and the TPC-DS-style date-surrogate star queries of
//!   reference \[18\]), each with a baseline and an OD-aware plan over the
//!   `od-engine` executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reduce;
pub mod registry;
pub mod star;

pub use reduce::{reduce_group_by, reduce_order_by_fd, reduce_order_by_od};
pub use registry::{names_to_list, OdRegistry, TableConstraints};
pub use star::{aggregation_query, run_timed, same_results, AggregationQuery, DateRangeStarQuery};
