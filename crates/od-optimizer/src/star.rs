//! Query shapes and planners for the paper's two motivating optimization
//! scenarios, each planned twice: a **baseline** plan using only the reasoning
//! available without ODs (FD-based rewrites, as in Simmen et al. \[17\]), and an
//! **OD-aware** plan using the rewrites this paper enables.
//!
//! * [`AggregationQuery`] — the Example 1 shape: `GROUP BY` / `ORDER BY` over a
//!   (denormalized) sales table whose natural hierarchy carries ODs.  The OD
//!   plan reduces the order-by with `Reduce-2` and answers it with an ordered
//!   index scan plus stream aggregation; the baseline must sort.
//! * [`DateRangeStarQuery`] — the Section 2.3 / reference \[18\] shape: a fact
//!   table keyed by a date *surrogate*, joined to a date dimension filtered by a
//!   *natural* date range.  Given the declared OD `[d_date_sk] ↔ [d_date]`, the
//!   OD plan probes the dimension for the matching surrogate-key range, replaces
//!   the join by a range predicate on the fact table, and prunes fact partitions;
//!   the baseline scans every partition and joins.

use crate::reduce::{reduce_group_by, reduce_order_by_od};
use crate::registry::{names_to_list, OdRegistry};
use od_core::{AttrList, Value};
use od_engine::{execute, Aggregate, Batch, Catalog, CmpOp, Expr, Metrics, PhysicalPlan};

/// An aggregation query over a single table:
/// `SELECT group_by, aggs FROM table GROUP BY group_by ORDER BY order_by`.
#[derive(Debug, Clone)]
pub struct AggregationQuery {
    /// Source table name.
    pub table: String,
    /// Grouping columns (as listed in the query).
    pub group_by: AttrList,
    /// Ordering columns (as listed in the query).
    pub order_by: AttrList,
    /// Aggregates to compute.
    pub aggregates: Vec<Aggregate>,
}

impl AggregationQuery {
    /// Baseline plan (FD-aware only): reduce the group-by with FDs, but the
    /// order-by stays as written, so the plan sorts the scanned rows before a
    /// stream aggregation.
    pub fn plan_baseline(&self, registry: &mut OdRegistry) -> PhysicalPlan {
        let fds = registry.fds(&self.table);
        let group = reduce_group_by(&self.group_by, &fds);
        let _ = group; // grouping on the full list is equivalent; keep output columns as written
        PhysicalPlan::StreamAggregate {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::TableScan {
                    table: self.table.clone(),
                }),
                by: self.order_by.concat(&self.group_by),
            }),
            group_by: self.group_by.clone(),
            aggregates: self.aggregates.clone(),
        }
    }

    /// OD-aware plan: reduce the order-by with `Reduce-2`; if an index provides
    /// the reduced order, answer the query with an ordered index scan and stream
    /// aggregation — no sort operator at all.  Falls back to the baseline plan
    /// when no suitable index exists.
    pub fn plan_optimized(&self, catalog: &Catalog, registry: &mut OdRegistry) -> PhysicalPlan {
        let full_requirement = self.order_by.concat(&self.group_by);
        let reduced = reduce_order_by_od(&full_requirement, &self.table, registry);
        if let Some(table) = catalog.table(&self.table) {
            // A syntactic prefix match on the reduced requirement, or — more
            // generally — any index whose order is proved (via the declared ODs)
            // to satisfy the full requirement (the interesting-order test).
            let chosen = table.index_providing_order(&reduced).or_else(|| {
                table
                    .indexes
                    .iter()
                    .find(|ix| registry.order_satisfies(&self.table, &ix.key, &full_requirement))
            });
            if let Some(index) = chosen {
                return PhysicalPlan::StreamAggregate {
                    input: Box::new(PhysicalPlan::IndexOrderedScan {
                        table: self.table.clone(),
                        index: index.name.clone(),
                    }),
                    group_by: self.group_by.clone(),
                    aggregates: self.aggregates.clone(),
                };
            }
        }
        self.plan_baseline(registry)
    }
}

/// A star-schema query with a natural-date range predicate on the dimension:
///
/// ```sql
/// SELECT f.group_col, SUM(f.measure) FROM fact f, dim d
/// WHERE f.fact_sk = d.dim_sk AND d.natural_date BETWEEN lo AND hi
/// GROUP BY f.group_col ORDER BY f.group_col
/// ```
#[derive(Debug, Clone)]
pub struct DateRangeStarQuery {
    /// Fact table name.
    pub fact: String,
    /// Surrogate-key column of the fact table (position in the fact schema).
    pub fact_sk: od_core::AttrId,
    /// Dimension table name.
    pub dim: String,
    /// Surrogate-key column of the dimension table.
    pub dim_sk: od_core::AttrId,
    /// Natural date column of the dimension table.
    pub dim_date: od_core::AttrId,
    /// Inclusive natural-date range.
    pub date_lo: Value,
    /// Inclusive natural-date range.
    pub date_hi: Value,
    /// Fact-side grouping column.
    pub group_col: od_core::AttrId,
    /// Fact-side measure column (summed).
    pub measure: od_core::AttrId,
}

impl DateRangeStarQuery {
    /// The dimension-side date predicate.
    fn dim_predicate(&self) -> Expr {
        Expr::col(self.dim_date).between(
            Expr::lit(self.date_lo.clone()),
            Expr::lit(self.date_hi.clone()),
        )
    }

    /// Baseline plan: scan the whole fact table, hash-join it with the filtered
    /// dimension, aggregate, sort.
    pub fn plan_baseline(&self) -> PhysicalPlan {
        let join = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::TableScan {
                table: self.fact.clone(),
            }),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan {
                    table: self.dim.clone(),
                }),
                predicate: self.dim_predicate(),
            }),
            left_key: self.fact_sk,
            right_key: self.dim_sk,
        };
        PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::HashAggregate {
                input: Box::new(join),
                group_by: vec![self.group_col],
                aggregates: vec![Aggregate::Sum(self.measure), Aggregate::CountStar],
            }),
            by: AttrList::new([od_core::AttrId(0)]),
        }
    }

    /// OD-aware plan (the rewrite of reference \[18\]): requires the declared
    /// equivalence `[dim_sk] ↔ [dim_date]` on the dimension and a foreign-key
    /// relationship from the fact's surrogate column into the dimension.
    ///
    /// Two probes into the dimension compute the surrogate-key range matching the
    /// natural-date range; the join is replaced by a range predicate on the fact
    /// table, answered with partition pruning (or an index range scan) on the
    /// fact side.  Returns `None` when the prerequisites are not declared — the
    /// caller then keeps the baseline plan.
    pub fn plan_optimized(
        &self,
        catalog: &Catalog,
        registry: &mut OdRegistry,
    ) -> Option<PhysicalPlan> {
        let dim = catalog.table(&self.dim)?;
        // The rewrite is only sound if surrogate keys and natural dates order
        // each other (the paper's guarantee about the date dimension).
        let sk_list = AttrList::new([self.dim_sk]);
        let date_list = AttrList::new([self.dim_date]);
        if !(registry.order_satisfies(&self.dim, &sk_list, &date_list)
            && registry.order_satisfies(&self.dim, &date_list, &sk_list))
        {
            return None;
        }
        // Probe the dimension for the min/max surrogate key matching the date range.
        let sk_index = dim.index_on_leading(self.dim_sk)?;
        let (sk_lo, sk_hi) = sk_index.min_max_matching(&dim.relation, &self.dim_predicate())?;

        // Access the fact table by the surrogate-key range: partition pruning if
        // partitioned, index range scan if indexed, plain scan + filter otherwise.
        let fact = catalog.table(&self.fact)?;
        let fact_access = if fact.partitioning.as_ref().map(|p| p.column) == Some(self.fact_sk) {
            PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::PrunedPartitionScan {
                    table: self.fact.clone(),
                    lo: sk_lo.clone(),
                    hi: sk_hi.clone(),
                }),
                predicate: Expr::col(self.fact_sk)
                    .between(Expr::lit(sk_lo.clone()), Expr::lit(sk_hi.clone())),
            }
        } else if let Some(ix) = fact.index_on_leading(self.fact_sk) {
            PhysicalPlan::IndexRangeScan {
                table: self.fact.clone(),
                index: ix.name.clone(),
                lo: sk_lo.clone(),
                hi: sk_hi.clone(),
            }
        } else {
            PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan {
                    table: self.fact.clone(),
                }),
                predicate: Expr::col(self.fact_sk)
                    .between(Expr::lit(sk_lo.clone()), Expr::lit(sk_hi.clone())),
            }
        };
        Some(PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::HashAggregate {
                input: Box::new(fact_access),
                group_by: vec![self.group_col],
                aggregates: vec![Aggregate::Sum(self.measure), Aggregate::CountStar],
            }),
            by: AttrList::new([od_core::AttrId(0)]),
        })
    }
}

/// Execute a plan and time it.
pub fn run_timed(plan: &PhysicalPlan, catalog: &Catalog) -> (Batch, Metrics, std::time::Duration) {
    let start = std::time::Instant::now();
    let (batch, metrics) = execute(plan, catalog);
    (batch, metrics, start.elapsed())
}

/// Check that two result batches contain the same rows in the same order on the
/// grouping/aggregate columns (used by the experiments to validate rewrites).
pub fn same_results(a: &Batch, b: &Batch) -> bool {
    a.rows == b.rows
}

/// Convenience for building an [`AggregationQuery`] by column names.
pub fn aggregation_query(
    catalog: &Catalog,
    table: &str,
    group_by: &[&str],
    order_by: &[&str],
    aggregates: Vec<Aggregate>,
) -> AggregationQuery {
    let schema = catalog.table(table).expect("table exists").schema().clone();
    AggregationQuery {
        table: table.to_string(),
        group_by: names_to_list(&schema, group_by),
        order_by: names_to_list(&schema, order_by),
        aggregates,
    }
}

/// A comparison predicate helper re-exported for workload definitions.
pub fn equals(col: od_core::AttrId, value: impl Into<Value>) -> Expr {
    Expr::col(col).cmp(CmpOp::Eq, Expr::lit(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{AttrId, Relation, Schema};
    use od_engine::Table;

    /// Denormalized daily sales with a month ↦ quarter OD and an index on
    /// (year, month, day): the Example 1 setting.
    fn sales_catalog() -> (Catalog, OdRegistry) {
        let mut schema = Schema::new("daily_sales");
        let year = schema.add_attr("year");
        let _quarter = schema.add_attr("quarter");
        let month = schema.add_attr("month");
        let day = schema.add_attr("day");
        let _rev = schema.add_attr("revenue");
        let mut rows = Vec::new();
        for y in 2000..2003 {
            for m in 1..=12i64 {
                for d in [1i64, 15] {
                    rows.push(vec![
                        Value::Int(y),
                        Value::Int((m - 1) / 3 + 1),
                        Value::Int(m),
                        Value::Int(d),
                        Value::Int(y * 10 + m + d),
                    ]);
                }
            }
        }
        // Shuffle deterministically so the base table is not already sorted.
        rows.rotate_left(17);
        rows.swap(3, 40);
        let rel = Relation::from_rows(schema.clone(), rows).unwrap();
        let mut table = Table::new(rel);
        table.add_index("ix_ymd", AttrList::new([year, month, day]));
        let mut catalog = Catalog::new();
        catalog.add_table(table);
        let mut registry = OdRegistry::new();
        registry.declare_od(&schema, &["month"], &["quarter"]);
        (catalog, registry)
    }

    #[test]
    fn example_1_plans_agree_but_only_baseline_sorts() {
        let (catalog, mut registry) = sales_catalog();
        let q = aggregation_query(
            &catalog,
            "daily_sales",
            &["year", "quarter", "month"],
            &["year", "quarter", "month"],
            vec![Aggregate::Sum(AttrId(4)), Aggregate::CountStar],
        );
        let baseline = q.plan_baseline(&mut registry);
        let optimized = q.plan_optimized(&catalog, &mut registry);
        assert_eq!(baseline.sort_count(), 1);
        assert_eq!(
            optimized.sort_count(),
            0,
            "OD plan must avoid the sort:\n{}",
            optimized.explain()
        );
        let (b1, m1) = execute(&baseline, &catalog);
        let (b2, m2) = execute(&optimized, &catalog);
        assert!(
            same_results(&b1, &b2),
            "rewritten plan must return identical results"
        );
        assert_eq!(b1.len(), 3 * 12);
        assert_eq!(m1.sorts_performed, 1);
        assert_eq!(m2.sorts_performed, 0);
    }

    #[test]
    fn without_the_od_the_optimizer_keeps_the_sort() {
        let (catalog, _) = sales_catalog();
        let schema = catalog.table("daily_sales").unwrap().schema().clone();
        let mut fd_only = OdRegistry::new();
        fd_only.declare_fd(&schema, &["month"], &["quarter"]);
        let q = aggregation_query(
            &catalog,
            "daily_sales",
            &["year", "quarter", "month"],
            &["year", "quarter", "month"],
            vec![Aggregate::CountStar],
        );
        let plan = q.plan_optimized(&catalog, &mut fd_only);
        assert_eq!(
            plan.sort_count(),
            1,
            "FD knowledge alone cannot drop quarter from the order-by"
        );
    }

    /// A miniature fact/dimension pair for the surrogate-key rewrite.
    fn star_catalog(partitioned: bool) -> (Catalog, OdRegistry, DateRangeStarQuery) {
        let mut dim_schema = Schema::new("date_dim");
        let d_sk = dim_schema.add_attr("d_date_sk");
        let d_date = dim_schema.add_attr("d_date");
        let _d_year = dim_schema.add_attr("d_year");
        let dim_rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(1000 + i),
                    Value::Int(20_000 + i),
                    Value::Int(2000 + i / 365),
                ]
            })
            .collect();
        let dim_rel = Relation::from_rows(dim_schema.clone(), dim_rows).unwrap();
        let mut dim = Table::new(dim_rel);
        dim.add_index("ix_dim_sk", AttrList::new([d_sk]));

        let mut fact_schema = Schema::new("sales");
        let f_sk = fact_schema.add_attr("sold_date_sk");
        let f_item = fact_schema.add_attr("item");
        let f_qty = fact_schema.add_attr("qty");
        let fact_rows: Vec<Vec<Value>> = (0..2000)
            .map(|i| {
                vec![
                    Value::Int(1000 + (i * 7) % 100),
                    Value::Int(i % 5),
                    Value::Int(i % 13),
                ]
            })
            .collect();
        let fact_rel = Relation::from_rows(fact_schema, fact_rows).unwrap();
        let mut fact = Table::new(fact_rel);
        if partitioned {
            fact.partition_by(f_sk, 10);
        } else {
            fact.add_index("ix_fact_sk", AttrList::new([f_sk]));
        }

        let mut catalog = Catalog::new();
        catalog.add_table(dim);
        catalog.add_table(fact);
        let mut registry = OdRegistry::new();
        registry.declare_equivalence(&dim_schema, &["d_date_sk"], &["d_date"]);
        let q = DateRangeStarQuery {
            fact: "sales".into(),
            fact_sk: f_sk,
            dim: "date_dim".into(),
            dim_sk: d_sk,
            dim_date: d_date,
            date_lo: Value::Int(20_010),
            date_hi: Value::Int(20_029),
            group_col: f_item,
            measure: f_qty,
        };
        (catalog, registry, q)
    }

    #[test]
    fn date_surrogate_rewrite_prunes_partitions_and_matches_results() {
        let (catalog, mut registry, q) = star_catalog(true);
        let baseline = q.plan_baseline();
        let optimized = q
            .plan_optimized(&catalog, &mut registry)
            .expect("rewrite applies");
        let (b1, m1) = execute(&baseline, &catalog);
        let (b2, m2) = execute(&optimized, &catalog);
        assert!(same_results(&b1, &b2), "rewrite must preserve results");
        assert!(b1.len() <= 5 && !b1.is_empty());
        // Baseline scans every fact row; the rewrite scans a fraction of the partitions.
        assert!(m2.rows_scanned < m1.rows_scanned);
        assert_eq!(m2.partitions_total, 10);
        assert!(m2.partitions_scanned < m2.partitions_total);
        assert_eq!(m1.partitions_scanned, 0);
        assert!(m2.join_input_rows == 0 && m1.join_input_rows > 0);
    }

    #[test]
    fn date_surrogate_rewrite_uses_index_when_not_partitioned() {
        let (catalog, mut registry, q) = star_catalog(false);
        let optimized = q
            .plan_optimized(&catalog, &mut registry)
            .expect("rewrite applies");
        assert!(optimized.explain().contains("IndexRangeScan"));
        let (b2, _) = execute(&optimized, &catalog);
        let (b1, _) = execute(&q.plan_baseline(), &catalog);
        assert!(same_results(&b1, &b2));
    }

    #[test]
    fn rewrite_requires_the_declared_equivalence() {
        let (catalog, _, q) = star_catalog(true);
        let mut empty = OdRegistry::new();
        assert!(q.plan_optimized(&catalog, &mut empty).is_none());
        // One direction only is not enough either.
        let dim_schema = catalog.table("date_dim").unwrap().schema().clone();
        let mut one_way = OdRegistry::new();
        one_way.declare_od(&dim_schema, &["d_date_sk"], &["d_date"]);
        assert!(q.plan_optimized(&catalog, &mut one_way).is_none());
    }
}
