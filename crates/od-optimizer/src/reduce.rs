//! Order-by and group-by minimization.
//!
//! * [`reduce_order_by_fd`] is the baseline `Reduce` algorithm of Simmen et al.
//!   (reference \[17\] of the paper), as used by query optimizers today: sweep the
//!   `ORDER BY` list right to left and drop an attribute when the *set* of
//!   attributes to its left functionally determines it.
//! * [`reduce_order_by_od`] is the paper's `Reduce-2` (Section 2.3): in addition
//!   to the FD test, an attribute is dropped when the constraint set proves that
//!   the list without it still *orders* the original list — this covers the
//!   Eliminate and Left-Eliminate rewrites (Theorems 7 and 8) and, in particular,
//!   the Example 1 rewrite `ORDER BY year, quarter, month → ORDER BY year, month`
//!   that FDs alone cannot justify.
//! * [`reduce_group_by`] minimizes a `GROUP BY` list: an attribute can be dropped
//!   when the remaining attributes functionally determine it (partition
//!   equivalence).

use crate::registry::OdRegistry;
use od_core::{AttrList, FunctionalDependency, OrderDependency};
use od_infer::closure::attr_closure;

/// Baseline `Reduce` from \[17\]: drop attributes functionally determined by the
/// set of attributes preceding them.
pub fn reduce_order_by_fd(order_by: &AttrList, fds: &[FunctionalDependency]) -> AttrList {
    let mut kept: Vec<od_core::AttrId> = order_by.normalize().iter().collect();
    // Sweep right to left.
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let prefix: od_core::AttrSet = kept[..i].iter().copied().collect();
        if attr_closure(fds, &prefix).contains(kept[i]) {
            kept.remove(i);
        }
    }
    kept.into_iter().collect()
}

/// The OD-aware `Reduce-2`: additionally drop an attribute whenever the declared
/// ODs prove that the remaining list still orders the original one.
///
/// The droppability test is exact (`ℳ ⊨ reduced ↦ original`, via the implication
/// decider), so every rewrite justified by Theorems 7/8 — and any other
/// consequence of the declared ODs — is found.
pub fn reduce_order_by_od(order_by: &AttrList, table: &str, registry: &mut OdRegistry) -> AttrList {
    let original = order_by.clone();
    let mut kept: Vec<od_core::AttrId> = order_by.normalize().iter().collect();
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let mut candidate = kept.clone();
        candidate.remove(i);
        let candidate_list: AttrList = candidate.iter().copied().collect();
        if registry.implies(
            table,
            &OrderDependency::new(candidate_list.clone(), original.clone()),
        ) {
            kept = candidate;
        }
    }
    kept.into_iter().collect()
}

/// Minimize a `GROUP BY` list: drop attributes functionally determined by the
/// remaining ones (the partitions are unchanged).  Order within the list is
/// irrelevant for a partition operation; the surviving attributes keep their
/// original relative order so a downstream sort-based plan can still exploit
/// them.
pub fn reduce_group_by(group_by: &AttrList, fds: &[FunctionalDependency]) -> AttrList {
    let mut kept: Vec<od_core::AttrId> = group_by.normalize().iter().collect();
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let rest: od_core::AttrSet = kept
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, a)| *a)
            .collect();
        if attr_closure(fds, &rest).contains(kept[i]) {
            kept.remove(i);
        }
    }
    kept.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{AttrId, AttrSet, Schema};

    /// year = 0, quarter = 1, month = 2, day = 3 (numeric month/quarter).
    fn schema() -> Schema {
        let mut s = Schema::new("date_dim");
        for c in ["d_year", "d_quarter", "d_month", "d_day"] {
            s.add_attr(c);
        }
        s
    }

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }
    fn fd(lhs: &[u32], rhs: &[u32]) -> FunctionalDependency {
        FunctionalDependency::new(
            lhs.iter().map(|&i| AttrId(i)).collect::<AttrSet>(),
            rhs.iter().map(|&i| AttrId(i)).collect::<AttrSet>(),
        )
    }

    #[test]
    fn fd_reduce_drops_quarter_only_when_month_precedes_it() {
        let fds = [fd(&[2], &[1])]; // month → quarter
                                    // ORDER BY year, month, quarter → year, month (quarter follows its determinant).
        assert_eq!(reduce_order_by_fd(&l(&[0, 2, 1]), &fds), l(&[0, 2]));
        // ORDER BY year, quarter, month is NOT reducible with FDs alone:
        // quarter's prefix {year} does not determine it.
        assert_eq!(reduce_order_by_fd(&l(&[0, 1, 2]), &fds), l(&[0, 1, 2]));
    }

    #[test]
    fn od_reduce_handles_the_example_1_rewrite() {
        let s = schema();
        let mut r = OdRegistry::new();
        r.declare_od(&s, &["d_month"], &["d_quarter"]); // the OD, not just the FD
                                                        // ORDER BY year, quarter, month → ORDER BY year, month (Theorem 8).
        assert_eq!(
            reduce_order_by_od(&l(&[0, 1, 2]), "date_dim", &mut r),
            l(&[0, 2])
        );
        // ORDER BY year, month, quarter → ORDER BY year, month (Theorem 7).
        assert_eq!(
            reduce_order_by_od(&l(&[0, 2, 1]), "date_dim", &mut r),
            l(&[0, 2])
        );
        // With only the FD declared, neither OD-based drop fires on the
        // quarter-before-month form.
        let mut r_fd = OdRegistry::new();
        r_fd.declare_fd(&s, &["d_month"], &["d_quarter"]);
        assert_eq!(
            reduce_order_by_od(&l(&[0, 1, 2]), "date_dim", &mut r_fd),
            l(&[0, 1, 2])
        );
        // The FD still allows dropping quarter when it FOLLOWS month.
        assert_eq!(
            reduce_order_by_od(&l(&[0, 2, 1]), "date_dim", &mut r_fd),
            l(&[0, 2])
        );
    }

    #[test]
    fn od_reduce_respects_intervening_attributes() {
        // Section 2.3: with D ↦ B, ABD reduces to AD but ABCD must NOT reduce.
        let mut s = Schema::new("t");
        for c in ["a", "b", "c", "d"] {
            s.add_attr(c);
        }
        let mut r = OdRegistry::new();
        r.declare_od(&s, &["d"], &["b"]);
        assert_eq!(reduce_order_by_od(&l(&[0, 1, 3]), "t", &mut r), l(&[0, 3]));
        assert_eq!(
            reduce_order_by_od(&l(&[0, 1, 2, 3]), "t", &mut r),
            l(&[0, 1, 2, 3])
        );
    }

    #[test]
    fn reduced_order_is_always_sound() {
        // Whatever Reduce-2 returns must order the original list.
        let s = schema();
        let mut r = OdRegistry::new();
        r.declare_od(&s, &["d_month"], &["d_quarter"]);
        r.declare_od(&s, &["d_day"], &["d_month"]);
        for original in [
            l(&[0, 1, 2, 3]),
            l(&[1, 2, 3]),
            l(&[3, 2, 1, 0]),
            l(&[0, 3]),
        ] {
            let reduced = reduce_order_by_od(&original, "date_dim", &mut r);
            assert!(
                r.implies(
                    "date_dim",
                    &OrderDependency::new(reduced.clone(), original.clone())
                ),
                "{reduced} must order {original}"
            );
            assert!(reduced.len() <= original.normalize().len());
        }
    }

    #[test]
    fn group_by_reduction_uses_set_semantics() {
        let fds = [fd(&[2], &[1])]; // month → quarter
                                    // GROUP BY year, quarter, month → year, month regardless of position.
        assert_eq!(reduce_group_by(&l(&[0, 1, 2]), &fds), l(&[0, 2]));
        assert_eq!(reduce_group_by(&l(&[0, 2, 1]), &fds), l(&[0, 2]));
        // Nothing to drop without the FD.
        assert_eq!(reduce_group_by(&l(&[0, 1, 2]), &[]), l(&[0, 1, 2]));
        // Duplicates are normalized away.
        assert_eq!(reduce_group_by(&l(&[0, 0, 3]), &[]), l(&[0, 3]));
    }
}
