//! The constraint registry: declared order dependencies (the paper's new OD
//! *check constraint*), functional dependencies and keys, per table, together
//! with the interesting-order test used during plan selection.

use od_core::{AttrList, FunctionalDependency, OrderDependency, Schema};
use od_infer::{Decider, OdSet};
use std::collections::HashMap;

/// Declared constraints for one table.
#[derive(Debug, Clone, Default)]
pub struct TableConstraints {
    /// Declared order dependencies (includes FDs embedded per Theorem 13).
    pub ods: OdSet,
    /// Declared functional dependencies (kept separately so the FD-only baseline
    /// rewrites can be run without any OD knowledge).
    pub fds: Vec<FunctionalDependency>,
}

/// A registry of per-table constraints with cached deciders.
#[derive(Debug, Default)]
pub struct OdRegistry {
    tables: HashMap<String, TableConstraints>,
    deciders: HashMap<String, Decider>,
}

impl OdRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        OdRegistry::default()
    }

    /// Declare an OD constraint `X ↦ Y` on a table (by column names).
    pub fn declare_od(&mut self, schema: &Schema, lhs: &[&str], rhs: &[&str]) -> &mut Self {
        let od = OrderDependency::new(names_to_list(schema, lhs), names_to_list(schema, rhs));
        self.add_od(schema.name(), od)
    }

    /// Declare an order equivalence `X ↔ Y` on a table (by column names).
    pub fn declare_equivalence(
        &mut self,
        schema: &Schema,
        lhs: &[&str],
        rhs: &[&str],
    ) -> &mut Self {
        let l = names_to_list(schema, lhs);
        let r = names_to_list(schema, rhs);
        self.add_od(schema.name(), OrderDependency::new(l.clone(), r.clone()));
        self.add_od(schema.name(), OrderDependency::new(r, l))
    }

    /// Declare an FD `X → Y` on a table (by column names).  The FD is also
    /// registered as its OD embedding (Theorem 13) so OD-aware reasoning sees it.
    pub fn declare_fd(&mut self, schema: &Schema, lhs: &[&str], rhs: &[&str]) -> &mut Self {
        let fd = FunctionalDependency::new(
            names_to_list(schema, lhs).to_set(),
            names_to_list(schema, rhs).to_set(),
        );
        let entry = self.tables.entry(schema.name().to_string()).or_default();
        entry.fds.push(fd.clone());
        entry.ods.add_od(fd.to_od());
        self.deciders.remove(schema.name());
        self
    }

    /// Add a raw OD to a table's constraint set.
    pub fn add_od(&mut self, table: &str, od: OrderDependency) -> &mut Self {
        self.tables
            .entry(table.to_string())
            .or_default()
            .ods
            .add_od(od);
        self.deciders.remove(table);
        self
    }

    /// Retract an OD from a table's constraint set (the streaming-monitor
    /// hook: a discovered OD whose live verdict flips to *reject* must stop
    /// licensing rewrites immediately).  Returns true if anything was removed;
    /// the table's cached decider is invalidated so the next
    /// [`Self::order_satisfies`] query reflects the retraction.
    pub fn remove_od(&mut self, table: &str, od: &OrderDependency) -> bool {
        let Some(entry) = self.tables.get_mut(table) else {
            return false;
        };
        let removed = entry.ods.remove_od(od);
        if removed {
            self.deciders.remove(table);
        }
        removed
    }

    /// The constraints declared for a table (empty defaults if none).
    pub fn constraints(&self, table: &str) -> TableConstraints {
        self.tables.get(table).cloned().unwrap_or_default()
    }

    /// The declared FDs of a table.
    pub fn fds(&self, table: &str) -> Vec<FunctionalDependency> {
        self.tables
            .get(table)
            .map(|t| t.fds.clone())
            .unwrap_or_default()
    }

    /// The declared ODs of a table.
    pub fn ods(&self, table: &str) -> OdSet {
        self.tables
            .get(table)
            .map(|t| t.ods.clone())
            .unwrap_or_default()
    }

    /// Does the declared constraint set of `table` entail `provided ↦ required`,
    /// i.e. does a tuple stream ordered by `provided` satisfy an interesting
    /// order `required`?  This is the test used for sort elimination.
    pub fn order_satisfies(
        &mut self,
        table: &str,
        provided: &AttrList,
        required: &AttrList,
    ) -> bool {
        let decider = self.decider(table);
        decider.implies(&OrderDependency::new(provided.clone(), required.clone()))
    }

    /// Does the declared constraint set of `table` entail the OD?
    pub fn implies(&mut self, table: &str, od: &OrderDependency) -> bool {
        self.decider(table).implies(od)
    }

    fn decider(&mut self, table: &str) -> &Decider {
        if !self.deciders.contains_key(table) {
            let ods = self.ods(table);
            self.deciders.insert(table.to_string(), Decider::new(&ods));
        }
        &self.deciders[table]
    }
}

/// Resolve column names into an attribute list (panics on unknown names — these
/// are programming errors in constraint declarations).
pub fn names_to_list(schema: &Schema, names: &[&str]) -> AttrList {
    names
        .iter()
        .map(|n| {
            schema
                .attr_by_name(n)
                .unwrap_or_else(|_| panic!("unknown column '{n}'"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new("date_dim");
        for c in ["d_date_sk", "d_date", "d_year", "d_quarter", "d_month"] {
            s.add_attr(c);
        }
        s
    }

    #[test]
    fn declare_and_query_ods() {
        let s = schema();
        let mut r = OdRegistry::new();
        r.declare_od(&s, &["d_month"], &["d_quarter"]);
        r.declare_equivalence(&s, &["d_date_sk"], &["d_date"]);
        assert_eq!(r.ods("date_dim").len(), 3);

        // Sort elimination test: a stream ordered by (year, month) satisfies
        // ORDER BY year, quarter, month.
        let provided = names_to_list(&s, &["d_year", "d_month"]);
        let required = names_to_list(&s, &["d_year", "d_quarter", "d_month"]);
        assert!(r.order_satisfies("date_dim", &provided, &required));
        // ...but not the other way round for a weaker provided order.
        let weak = names_to_list(&s, &["d_year"]);
        assert!(!r.order_satisfies("date_dim", &weak, &required));
        // Unknown tables have no constraints: only trivial orders are satisfied.
        assert!(!r.order_satisfies("other", &provided, &required));
        assert!(r.order_satisfies("other", &required, &provided.prefix(1)));
    }

    #[test]
    fn remove_od_withdraws_the_rewrite_license() {
        let s = schema();
        let mut r = OdRegistry::new();
        r.declare_od(&s, &["d_month"], &["d_quarter"]);
        let provided = names_to_list(&s, &["d_year", "d_month"]);
        let required = names_to_list(&s, &["d_year", "d_quarter", "d_month"]);
        assert!(r.order_satisfies("date_dim", &provided, &required));

        let od = OrderDependency::new(
            names_to_list(&s, &["d_month"]),
            names_to_list(&s, &["d_quarter"]),
        );
        assert!(r.remove_od("date_dim", &od));
        assert!(
            !r.order_satisfies("date_dim", &provided, &required),
            "the cached decider must be invalidated on retraction"
        );
        // Retracting again (or from an unknown table) is a no-op.
        assert!(!r.remove_od("date_dim", &od));
        assert!(!r.remove_od("nope", &od));
    }

    #[test]
    fn declare_fd_registers_both_views() {
        let s = schema();
        let mut r = OdRegistry::new();
        r.declare_fd(&s, &["d_month"], &["d_quarter"]);
        assert_eq!(r.fds("date_dim").len(), 1);
        assert_eq!(r.ods("date_dim").len(), 1);
        // The FD's OD embedding does NOT allow the order rewrite (Example 1!).
        let provided = names_to_list(&s, &["d_year", "d_month"]);
        let required = names_to_list(&s, &["d_year", "d_quarter", "d_month"]);
        assert!(!r.order_satisfies("date_dim", &provided, &required));
        // But it does allow the group-by style equivalence on the FD fragment.
        let fd_shape = OrderDependency::new(
            names_to_list(&s, &["d_month"]),
            names_to_list(&s, &["d_month", "d_quarter"]),
        );
        assert!(r.implies("date_dim", &fd_shape));
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_columns_panic() {
        let s = schema();
        names_to_list(&s, &["nope"]);
    }
}
