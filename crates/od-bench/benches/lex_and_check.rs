//! E1 bench — lexicographic comparison and OD checking (split/swap detection)
//! as a function of relation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::check::{check_od, check_od_naive};
use od_core::{lex_cmp, OrderDependency};
use od_workload::generate_date_dim;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lex_and_check");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10);
    for days in [365usize, 5 * 365] {
        let rel = generate_date_dim(1998, days, 2_450_000);
        let s = rel.schema();
        let od = OrderDependency::new(
            vec![s.attr_by_name("d_date").unwrap()],
            vec![
                s.attr_by_name("d_year").unwrap(),
                s.attr_by_name("d_month").unwrap(),
            ],
        );
        let list = od.rhs.clone();
        group.bench_with_input(BenchmarkId::new("lex_cmp_pairs", days), &days, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..rel.len().min(500) {
                    for j in 0..rel.len().min(500) {
                        if lex_cmp(rel.tuple(i), rel.tuple(j), &list) == std::cmp::Ordering::Less {
                            acc += 1;
                        }
                    }
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("check_od_sorting", days), &days, |b, _| {
            b.iter(|| check_od(&rel, &od).is_ok())
        });
        if days <= 365 {
            group.bench_with_input(BenchmarkId::new("check_od_naive", days), &days, |b, _| {
                b.iter(|| check_od_naive(&rel, &od).is_ok())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
