//! E7 bench — constructing the `split(ℳ)` append `swap(ℳ)` witness table
//! (the completeness construction of Section 4) for growing universes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::{AttrId, OrderDependency, Schema};
use od_infer::{witness_table, OdSet};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_construction");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    for n in [3usize, 4, 5] {
        let mut schema = Schema::new("w");
        for i in 0..n {
            schema.add_attr(format!("a{i}"));
        }
        let m = OdSet::from_ods(
            (0..n - 1)
                .map(|i| OrderDependency::new(vec![AttrId(i as u32)], vec![AttrId(i as u32 + 1)])),
        );
        group.bench_with_input(BenchmarkId::new("witness_table", n), &n, |b, _| {
            b.iter(|| witness_table(&m, &schema).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
