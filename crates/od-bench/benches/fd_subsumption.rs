//! E8 bench — constructing machine-checked OD proofs for FD consequences
//! (Theorem 16) and the FD closure computation feeding `split(ℳ)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::{AttrId, AttrSet, FunctionalDependency, OrderDependency};
use od_infer::closure::fd_closure;
use od_infer::fd_bridge::prove_fd;
use od_infer::OdSet;
use std::time::Duration;

fn chain(n: usize) -> OdSet {
    OdSet::from_ods(
        (0..n - 1)
            .map(|i| OrderDependency::new(vec![AttrId(i as u32)], vec![AttrId(i as u32 + 1)])),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_subsumption");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for n in [4usize, 8, 12] {
        let m = chain(n);
        let goal = FunctionalDependency::new([AttrId(0)], [AttrId(n as u32 - 1)]);
        let start: AttrSet = [AttrId(0)].into_iter().collect();
        group.bench_with_input(BenchmarkId::new("fd_closure", n), &n, |b, _| {
            b.iter(|| fd_closure(&m, &start).len())
        });
        group.bench_with_input(BenchmarkId::new("prove_fd_as_od", n), &n, |b, _| {
            b.iter(|| prove_fd(&m, &goal).map(|p| p.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
