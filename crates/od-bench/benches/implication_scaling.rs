//! E9 bench — the exact implication decider (two-tuple pattern search) as a
//! function of the attribute-universe size, for implied and non-implied goals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::{AttrId, OrderDependency};
use od_infer::{Decider, OdSet};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_scaling");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for n in [4usize, 8, 12] {
        let m = OdSet::from_ods(
            (0..n - 1)
                .map(|i| OrderDependency::new(vec![AttrId(i as u32)], vec![AttrId(i as u32 + 1)])),
        );
        let decider = Decider::new(&m);
        let implied = OrderDependency::new(vec![AttrId(0)], vec![AttrId(n as u32 - 1)]);
        let not_implied = OrderDependency::new(vec![AttrId(n as u32 - 1)], vec![AttrId(0)]);
        group.bench_with_input(BenchmarkId::new("implied_goal", n), &n, |b, _| {
            b.iter(|| decider.implies(&implied))
        });
        group.bench_with_input(BenchmarkId::new("counterexample_search", n), &n, |b, _| {
            b.iter(|| decider.counterexample(&not_implied).is_some())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
