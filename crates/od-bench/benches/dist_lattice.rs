//! E17 bench — the distributed traversal's moving parts at bench-friendly
//! row counts: the threaded engine as the baseline, the full coordinator +
//! worker-pool discovery at 1/2/4 in-process workers (every frame codec,
//! shard merge, and ledger path runs; process spawn is excluded so the
//! numbers isolate protocol + merge overhead), and the columnar snapshot
//! codec that dominates worker startup.  The million-row end-to-end numbers
//! (real processes, spawn included) come from `reproduce -- e17`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::Relation;
use od_setbased::{discover_statements, discover_statements_dist, LatticeConfig, WorkerLauncher};
use od_workload::{scale_relation, SCALE_1M};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_lattice");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    for rows in [20_000usize, 100_000] {
        let cfg = SCALE_1M.with_rows(rows);
        let rel = scale_relation(&cfg);
        let config = LatticeConfig {
            max_context: 4,
            ..Default::default()
        };

        group.bench_with_input(BenchmarkId::new("threaded", rows), &rows, |b, _| {
            b.iter(|| discover_statements(&rel, &config).minimal_statements().len())
        });

        for workers in [1usize, 2, 4] {
            let dist_config = LatticeConfig { workers, ..config };
            group.bench_with_input(
                BenchmarkId::new(format!("dist_workers{workers}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        let (result, _) = discover_statements_dist(
                            &rel,
                            &dist_config,
                            &WorkerLauncher::in_process(),
                        )
                        .expect("in-process distributed discovery");
                        result.minimal_statements().len()
                    })
                },
            );
        }

        group.bench_with_input(BenchmarkId::new("snapshot_encode", rows), &rows, |b, _| {
            b.iter(|| rel.to_bytes().len())
        });

        let snapshot = rel.to_bytes();
        group.bench_with_input(BenchmarkId::new("snapshot_decode", rows), &rows, |b, _| {
            b.iter(|| {
                Relation::from_bytes(&snapshot)
                    .expect("snapshot round-trip")
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
