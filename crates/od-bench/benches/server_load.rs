//! E15 bench — wire-protocol request round-trips against a live `od-server`
//! on loopback TCP.  Three entries isolate the layers the E15 experiment
//! composes:
//!
//! * `ping_roundtrip` — pure protocol + transport floor (frame, send, parse,
//!   answer);
//! * `status_roundtrip` — a `MonitorStatus` read: verdict-ledger reads plus
//!   response serialization for three watched ODs;
//! * `duplicate_delta_roundtrip` — an `ApplyDelta` inserting a duplicate row:
//!   the full write path (stream patch, verdict re-read, broadcast check)
//!   without ever flipping a verdict.

use criterion::{criterion_group, criterion_main, Criterion};
use od_core::{AttrId, OrderDependency};
use od_server::proto::{Request, Response};
use od_server::{Client, OdServer};
use od_workload::tax;
use std::time::Duration;

const ROWS: usize = 5_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_load");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    let server = OdServer::bind("127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let rel = tax::generate_taxes(ROWS, 42);
    let row = rel.tuples()[0].clone();
    client
        .request(&Request::CreateRelation {
            name: "taxes".into(),
            relation: rel,
        })
        .expect("create relation");
    client
        .request(&Request::CreateMonitor {
            name: "ledger".into(),
            relation: "taxes".into(),
            epsilon: 0.0,
            ods: vec![
                OrderDependency::new(vec![AttrId(1)], vec![AttrId(2)]),
                OrderDependency::new(vec![AttrId(1)], vec![AttrId(3)]),
                OrderDependency::new(vec![AttrId(2)], vec![AttrId(3)]),
            ],
        })
        .expect("create monitor");

    group.bench_function("ping_roundtrip", |b| {
        b.iter(|| {
            let response = client.request(&Request::Ping).expect("ping");
            assert!(matches!(response, Response::Pong));
        })
    });

    group.bench_function("status_roundtrip", |b| {
        b.iter(|| {
            let response = client
                .request(&Request::MonitorStatus {
                    monitor: "ledger".into(),
                })
                .expect("status");
            match response {
                Response::Statuses { statuses, .. } => assert_eq!(statuses.len(), 3),
                other => panic!("unexpected {other:?}"),
            }
        })
    });

    group.bench_function("duplicate_delta_roundtrip", |b| {
        b.iter(|| {
            let response = client
                .request(&Request::ApplyDelta {
                    monitor: "ledger".into(),
                    inserts: vec![row.clone()],
                    deletes: vec![],
                })
                .expect("delta");
            match response {
                Response::DeltaApplied { flipped, .. } => assert!(flipped.is_empty()),
                other => panic!("unexpected {other:?}"),
            }
        })
    });

    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
