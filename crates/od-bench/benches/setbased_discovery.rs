//! E10 bench — naive (sort-per-candidate) vs set-based (partition-backed)
//! OD discovery on the tax and date-warehouse workloads, width-2 candidates,
//! plus the approximate (`g3`-thresholded) variant on dirtied data.
//!
//! The set-based engine validates canonical statements once each and shares
//! them across candidates, so its advantage grows with both row count and the
//! number of enumerated candidates.  The approximate entries measure the cost
//! of evidence collection: instead of bailing at the first violation, rejected
//! statements are scanned until the error budget is exhausted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::{Relation, Value};
use od_discovery::{discover_ods, DiscoveryConfig, DiscoveryEngine};
use od_workload::{generate_date_dim, tax};
use std::time::Duration;

fn config(engine: DiscoveryEngine, parallel: bool) -> DiscoveryConfig {
    DiscoveryConfig {
        engine,
        parallel,
        ..Default::default()
    }
}

/// Corrupt roughly one row in a hundred (deterministically) so exact ODs break
/// and approximate discovery has real work to do.
fn corrupt(mut rel: Relation, column: usize) -> Relation {
    for (i, row) in rel.tuples_mut().iter_mut().enumerate() {
        if i % 101 == 7 {
            row[column] = Value::Int(-1 - (i as i64 % 13));
        }
    }
    rel
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("setbased_discovery");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    for rows in [2_000usize, 10_000] {
        let taxes = tax::generate_taxes(rows, 7);
        group.bench_with_input(BenchmarkId::new("taxes_naive", rows), &rows, |b, _| {
            b.iter(|| {
                discover_ods(&taxes, config(DiscoveryEngine::Naive, false))
                    .ods
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("taxes_setbased", rows), &rows, |b, _| {
            b.iter(|| {
                discover_ods(&taxes, config(DiscoveryEngine::SetBased, false))
                    .ods
                    .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("taxes_setbased_parallel", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    discover_ods(&taxes, config(DiscoveryEngine::SetBased, true))
                        .ods
                        .len()
                })
            },
        );
    }

    // Approximate discovery on dirtied taxes: ε = 2% against ~1% corrupted
    // rows, compared with the exact run on the same dirty data (which rejects
    // the corrupted ODs early) — the price of evidence over early exit.
    let dirty = corrupt(tax::generate_taxes(10_000, 7), 1);
    group.bench_with_input(
        BenchmarkId::new("taxes_dirty_exact", 10_000),
        &10_000,
        |b, _| {
            b.iter(|| {
                discover_ods(&dirty, config(DiscoveryEngine::SetBased, false))
                    .ods
                    .len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("taxes_dirty_eps2pct", 10_000),
        &10_000,
        |b, _| {
            b.iter(|| {
                discover_ods(
                    &dirty,
                    DiscoveryConfig {
                        epsilon: 0.02,
                        ..config(DiscoveryEngine::SetBased, false)
                    },
                )
                .ods
                .len()
            })
        },
    );

    // The date warehouse has 9 attributes, so width-2 enumeration produces
    // thousands of candidates — the regime the statement memoization targets.
    // The naive engine is benched on fewer days to keep its runtime sane.
    let dates_small = generate_date_dim(1998, 400, 2_450_000);
    group.bench_with_input(BenchmarkId::new("date_dim_naive", 400), &400, |b, _| {
        b.iter(|| {
            discover_ods(&dates_small, config(DiscoveryEngine::Naive, false))
                .ods
                .len()
        })
    });
    group.bench_with_input(BenchmarkId::new("date_dim_setbased", 400), &400, |b, _| {
        b.iter(|| {
            discover_ods(&dates_small, config(DiscoveryEngine::SetBased, false))
                .ods
                .len()
        })
    });
    let dates_large = generate_date_dim(1998, 10_000, 2_450_000);
    group.bench_with_input(
        BenchmarkId::new("date_dim_setbased", 10_000),
        &10_000,
        |b, _| {
            b.iter(|| {
                discover_ods(&dates_large, config(DiscoveryEngine::SetBased, false))
                    .ods
                    .len()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
