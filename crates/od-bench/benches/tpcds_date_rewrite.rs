//! E4 bench — the date-surrogate rewrite (reference [18]) over the 18-query
//! suite: baseline join plans vs. rewritten range/partition-pruned plans.

use criterion::{criterion_group, criterion_main, Criterion};
use od_engine::execute;
use od_workload::{build_warehouse, date_query_suite, WarehouseConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcds_date_rewrite");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    let mut wh = build_warehouse(WarehouseConfig {
        fact_rows: 60_000,
        ..WarehouseConfig::default()
    });
    let suite = date_query_suite(&wh);
    let baselines: Vec<_> = suite.iter().map(|q| q.query.plan_baseline()).collect();
    let rewritten: Vec<_> = suite
        .iter()
        .map(|q| {
            q.query
                .plan_optimized(&wh.catalog, &mut wh.registry)
                .expect("rewrite applies")
        })
        .collect();

    group.bench_function("suite_baseline", |b| {
        b.iter(|| {
            baselines
                .iter()
                .map(|p| execute(p, &wh.catalog).0.len())
                .sum::<usize>()
        })
    });
    group.bench_function("suite_rewritten", |b| {
        b.iter(|| {
            rewritten
                .iter()
                .map(|p| execute(p, &wh.catalog).0.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
