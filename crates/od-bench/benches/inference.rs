//! E6 bench — axiom-level proof construction (the derived theorems of
//! Section 3.3) and proof verification.

use criterion::{criterion_group, criterion_main, Criterion};
use od_core::{AttrId, AttrList, OrderDependency};
use od_infer::{theorems, ProofBuilder};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(20);

    let l = |ids: &[u32]| ids.iter().map(|&i| AttrId(i)).collect::<AttrList>();
    let premises = vec![
        OrderDependency::new(l(&[1]), l(&[2])),
        OrderDependency::new(l(&[0, 1]), l(&[3, 4])),
    ];

    group.bench_function("build_left_eliminate_proof", |b| {
        b.iter(|| {
            let mut builder = ProofBuilder::new();
            let p = builder.given(premises[0].clone());
            theorems::left_eliminate(&mut builder, p, &l(&[0]), &l(&[5]));
            builder.finish().len()
        })
    });
    group.bench_function("build_permutation_proof", |b| {
        b.iter(|| {
            let mut builder = ProofBuilder::new();
            let p = builder.given(premises[1].clone());
            theorems::permutation(&mut builder, p, &l(&[1, 0]), &l(&[4, 3]));
            builder.finish().len()
        })
    });
    // Verification cost of a moderately sized proof.
    let proof = {
        let mut builder = ProofBuilder::new();
        let p = builder.given(premises[1].clone());
        theorems::permutation(&mut builder, p, &l(&[1, 0]), &l(&[4, 3]));
        builder.finish()
    };
    group.bench_function("verify_permutation_proof", |b| {
        b.iter(|| proof.verify(&premises).is_ok())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
