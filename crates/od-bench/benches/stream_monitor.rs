//! E11 bench — incremental OD monitoring vs full re-validation on a changing
//! `date_dim` table.
//!
//! Base table: 10k rows.  Each delta is 1% of the table (100 deletes + 100
//! inserts).  The monitored set is the zero-error install set of a width-2
//! discovery run.  Three entries:
//!
//! * `monitor_delta_1pct` — [`Monitor::apply`]: delta-maintained partitions
//!   patch only the touched classes and re-read the verdict ledgers;
//! * `full_revalidation_10k` — the pre-streaming alternative: snapshot the
//!   live rows and re-validate every monitored statement with a fresh
//!   partition scan (what every delta used to cost);
//! * `full_rediscovery_10k` — the even blunter alternative: re-run width-2
//!   discovery on the snapshot.
//!
//! The churn batches, statement set, and re-validation baseline are shared
//! with the ≥5× acceptance-criterion guard (`tests/stream_speed.rs`, run in
//! CI under the release profile) via [`od_bench::streaming`], so the bench
//! measures exactly what the guard asserts.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::streaming::{churn_batch, full_revalidation, monitored_statements};
use od_discovery::{discover_ods, DiscoveryConfig, Monitor};
use od_workload::generate_date_dim;
use std::time::Duration;

const BASE_ROWS: usize = 10_000;
const DELTA_ROWS: usize = 100; // 1% of the base table

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_monitor");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    let rel = generate_date_dim(1998, BASE_ROWS, 2_450_000);
    let fresh = generate_date_dim(2030, BASE_ROWS, 9_450_000);
    let discovery = discover_ods(&rel, DiscoveryConfig::default());
    let stmts = monitored_statements(&discovery);

    let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
    let mut round = 0usize;
    group.bench_function("monitor_delta_1pct", |b| {
        b.iter(|| {
            let batch = churn_batch(round, DELTA_ROWS, fresh.tuples());
            round += 1;
            monitor.apply(&batch).expect("valid churn batch").statuses
        })
    });

    // Baselines work on the live snapshot the monitor has evolved to, so all
    // three entries validate the same data.
    let snapshot = monitor.stream().to_relation();
    group.bench_function("full_revalidation_10k", |b| {
        b.iter(|| full_revalidation(&snapshot, &stmts))
    });
    group.bench_function("full_rediscovery_10k", |b| {
        b.iter(|| {
            discover_ods(&snapshot, DiscoveryConfig::default())
                .ods
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
