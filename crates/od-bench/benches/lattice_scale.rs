//! E16 bench — partition products through the deep lattice: all ordered-pair
//! products of the per-attribute CSR partitions on the radix and hash paths,
//! and end-to-end width-4 discovery where every level ≥ 2 partition is a
//! memoized radix product.  Row counts stay moderate so the bench harness
//! finishes in CI time; the million-row numbers come from `reproduce -- e16`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_setbased::{
    discover_statements, ClassCodes, LatticeConfig, RefineScratch, StrippedPartition,
};
use od_workload::{scale_relation, SCALE_1M};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_scale");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    for rows in [20_000usize, 100_000] {
        let cfg = SCALE_1M.with_rows(rows);
        let rel = scale_relation(&cfg);
        let arity = rel.schema().arity();
        let enc = rel.encoding();
        let mut scratch = RefineScratch::default();
        let parts: Vec<StrippedPartition> = (0..arity)
            .map(|i| StrippedPartition::by_codes_with(enc.codes(i), &mut scratch))
            .collect();
        let codes: Vec<ClassCodes> = parts.iter().map(StrippedPartition::class_codes).collect();

        group.bench_with_input(BenchmarkId::new("product_radix", rows), &rows, |b, _| {
            b.iter(|| {
                let mut scratch = RefineScratch::default();
                let mut classes = 0usize;
                for (i, p) in parts.iter().enumerate() {
                    for (j, c) in codes.iter().enumerate() {
                        if i != j {
                            classes += p.product_with(c, &mut scratch).num_classes();
                        }
                    }
                }
                classes
            })
        });

        group.bench_with_input(BenchmarkId::new("product_hash", rows), &rows, |b, _| {
            b.iter(|| {
                let mut classes = 0usize;
                for (i, p) in parts.iter().enumerate() {
                    for (j, c) in codes.iter().enumerate() {
                        if i != j {
                            classes += p.product_hash(c).num_classes();
                        }
                    }
                }
                classes
            })
        });

        group.bench_with_input(BenchmarkId::new("discover_w4", rows), &rows, |b, _| {
            let config = LatticeConfig {
                max_context: 4,
                threads: 1,
                ..Default::default()
            };
            b.iter(|| {
                discover_statements(&rel, &config)
                    .minimal_statements()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
