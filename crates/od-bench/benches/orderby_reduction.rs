//! E3 bench — the Example 1 query: baseline sorting plan vs. the OD-rewritten
//! index-order plan.

use criterion::{criterion_group, criterion_main, Criterion};
use od_engine::{execute, Aggregate, Catalog};
use od_optimizer::{aggregation_query, OdRegistry};
use od_workload::daily_sales_table;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("orderby_reduction");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    let table = daily_sales_table(2000, 3 * 365, 8, 7);
    let schema = table.schema().clone();
    let mut catalog = Catalog::new();
    catalog.add_table(table);
    let mut registry = OdRegistry::new();
    registry.declare_od(&schema, &["month"], &["quarter"]);
    let rev = schema.attr_by_name("revenue").unwrap();
    let q = aggregation_query(
        &catalog,
        "daily_sales",
        &["year", "quarter", "month"],
        &["year", "quarter", "month"],
        vec![Aggregate::Sum(rev), Aggregate::CountStar],
    );
    let baseline = q.plan_baseline(&mut registry);
    let optimized = q.plan_optimized(&catalog, &mut registry);
    assert_eq!(optimized.sort_count(), 0);

    group.bench_function("baseline_sort_plan", |b| {
        b.iter(|| execute(&baseline, &catalog).0.len())
    });
    group.bench_function("od_index_order_plan", |b| {
        b.iter(|| execute(&optimized, &catalog).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
