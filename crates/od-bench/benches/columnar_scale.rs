//! E14 bench — the columnar core's three hot paths on the scale table:
//! relation build (dictionary encode included), all width-≤2 partition
//! refinements on radix-bucketed code columns, and end-to-end width-2
//! discovery.  Row counts stay moderate so the bench harness finishes in CI
//! time; the full million-row numbers come from `reproduce -- e14`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_setbased::{discover_statements, LatticeConfig, RefineScratch, StrippedPartition};
use od_workload::{scale_relation, SCALE_1M};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_scale");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    for rows in [20_000usize, 100_000] {
        let cfg = SCALE_1M.with_rows(rows);
        let rel = scale_relation(&cfg);
        let arity = rel.schema().arity();

        group.bench_with_input(BenchmarkId::new("build", rows), &rows, |b, _| {
            b.iter(|| scale_relation(&cfg).len())
        });

        group.bench_with_input(BenchmarkId::new("refine_radix", rows), &rows, |b, _| {
            let enc = rel.encoding();
            b.iter(|| {
                let mut scratch = RefineScratch::default();
                let mut classes = 0usize;
                for i in 0..arity {
                    let p = StrippedPartition::by_codes_with(enc.codes(i), &mut scratch);
                    for j in 0..arity {
                        if i != j {
                            classes += p.refine_by_with(enc.codes(j), &mut scratch).num_classes();
                        }
                    }
                }
                classes
            })
        });

        group.bench_with_input(BenchmarkId::new("discover_w2", rows), &rows, |b, _| {
            let config = LatticeConfig {
                max_context: 2,
                threads: 1,
                ..Default::default()
            };
            b.iter(|| {
                discover_statements(&rel, &config)
                    .minimal_statements()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
