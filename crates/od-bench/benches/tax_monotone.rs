//! E5 bench — the Example 5 taxes query: sort-based vs. income-index plans, and
//! OD discovery on the taxes table.

use criterion::{criterion_group, criterion_main, Criterion};
use od_discovery::{discover_ods, DiscoveryConfig};
use od_engine::{execute, Aggregate, Catalog};
use od_optimizer::{aggregation_query, OdRegistry};
use od_workload::tax;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tax_monotone");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);

    let table = tax::tax_table(50_000, 3);
    let schema = table.schema().clone();
    let small_rel = tax::generate_taxes(2_000, 5);
    let mut catalog = Catalog::new();
    catalog.add_table(table);
    let mut registry = OdRegistry::new();
    registry.declare_od(&schema, &["income"], &["bracket"]);
    registry.declare_od(&schema, &["income"], &["payable"]);
    let payable = schema.attr_by_name("payable").unwrap();
    let q = aggregation_query(
        &catalog,
        "taxes",
        &["bracket"],
        &["bracket", "payable"],
        vec![Aggregate::CountStar, Aggregate::Sum(payable)],
    );
    let mut no_ods = OdRegistry::new();
    let baseline = q.plan_baseline(&mut no_ods);
    let optimized = q.plan_optimized(&catalog, &mut registry);

    group.bench_function("orderby_via_sort", |b| {
        b.iter(|| execute(&baseline, &catalog).0.len())
    });
    group.bench_function("orderby_via_income_index", |b| {
        b.iter(|| execute(&optimized, &catalog).0.len())
    });
    group.bench_function("discover_ods_2000_rows", |b| {
        b.iter(|| {
            discover_ods(&small_rel, DiscoveryConfig::default())
                .ods
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
