//! E2 bench — validating the Figure 2 hierarchy ODs over growing calendars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_core::check::od_holds;
use od_workload::{dates, generate_date_dim};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("date_hierarchy");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10);
    for days in [365usize, 3 * 365, 10 * 365] {
        let rel = generate_date_dim(1998, days, 2_450_000);
        let ods = dates::figure_2_ods(rel.schema());
        group.bench_with_input(
            BenchmarkId::new("validate_all_figure2_ods", days),
            &days,
            |b, _| b.iter(|| ods.iter().filter(|(_, od)| od_holds(&rel, od)).count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
