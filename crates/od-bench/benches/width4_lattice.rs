//! E13 bench — width-4 lattice traversal on bitset attribute sets, against
//! the width-3 node-store profile as the baseline.
//!
//! What makes width 4 affordable is representation plus batching: contexts,
//! candidate sets and partition keys are `u64` masks (propagation is a `&`,
//! subsumption a compare-and-mask, cache keys hash one word), level expansion
//! shards partition refinement by context, and decider implication runs as
//! one batched round-trip per level with counterexample reuse.  The bench
//! measures the residual cost — partition products for the surviving level-4
//! nodes plus their batched scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use od_setbased::{discover_statements, LatticeConfig};
use od_workload::{generate_date_dim, tax};
use std::time::Duration;

fn config(max_context: usize, threads: usize) -> LatticeConfig {
    LatticeConfig {
        max_context,
        threads,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("width4_lattice");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    let taxes = tax::generate_taxes(10_000, 7);
    let dates = generate_date_dim(1998, 10_000, 2_450_000);
    for (name, rel) in [("taxes", &taxes), ("date_dim", &dates)] {
        for width in [3usize, 4] {
            group.bench_with_input(BenchmarkId::new(name, width), &width, |b, &w| {
                b.iter(|| {
                    discover_statements(rel, &config(w, 1))
                        .minimal_statements()
                        .len()
                })
            });
        }
        group.bench_with_input(
            BenchmarkId::new(format!("{name}_threaded"), 4),
            &4,
            |b, &w| {
                b.iter(|| {
                    discover_statements(rel, &config(w, od_setbased::parallel::available_threads()))
                        .minimal_statements()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
