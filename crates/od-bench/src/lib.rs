//! # od-bench — experiment harness
//!
//! One function per experiment of `DESIGN.md`'s per-experiment index: E1–E9
//! reproduce the paper's figures and claims, E10 (set-based vs naive
//! discovery), E11 (incremental stream maintenance), E12 (width-3 node-based
//! lattice traversal), and E13 (width-4 traversal on bitset attribute sets)
//! measure the discovery subsystems that grew out of the paper's closing
//! problem.  Each function runs the reproduction
//! and returns a human-readable report fragment containing the claim and the
//! measured outcome; the `reproduce` binary concatenates them, and the
//! Criterion benches exercise the underlying operations for timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use od_core::check::{check_od, od_holds};
use od_core::{fixtures, AttrId, AttrList, OrderCompatibility, OrderDependency};
use od_engine::{execute, Aggregate};
use od_infer::witness::{completeness_gaps, witness_table};
use od_infer::{Decider, OdSet, Outcome, Prover};
use od_optimizer::{aggregation_query, reduce_order_by_fd, reduce_order_by_od, same_results};
use od_setbased::{DistStats, WorkerLauncher};
use od_workload::{
    build_warehouse, daily_sales_table, date_query_suite, dates, generate_date_dim, tax,
    WarehouseConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

pub mod metrics;
pub mod server_load;
pub mod streaming;
pub mod timing;

pub use server_load::{exp_e15_server_load, exp_e15_server_load_with_metrics, LoadConfig};

/// Sizing for the experiment runs (kept configurable so tests can run tiny
/// versions and the `reproduce` binary a fuller one).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Days in the generated calendars.
    pub calendar_days: usize,
    /// Rows in the fact table of the TPC-DS-style warehouse.
    pub fact_rows: usize,
    /// Rows in the taxes table.
    pub tax_rows: usize,
    /// Stores per day in the denormalized daily-sales table.
    pub stores: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            calendar_days: 3 * 365,
            fact_rows: 120_000,
            tax_rows: 20_000,
            stores: 8,
        }
    }
}

impl ExperimentScale {
    /// A tiny scale suitable for unit/integration tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            calendar_days: 120,
            fact_rows: 3_000,
            tax_rows: 500,
            stores: 2,
        }
    }
}

/// E1 — Figure 1 / Examples 2–3: the sample relation and its (non-)dependencies.
pub fn exp_e1_figure1() -> String {
    let rel = fixtures::figure_1_relation();
    let s = rel.schema().clone();
    let a = |n: &str| s.attr_by_name(n).unwrap();
    let good = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("E"), a("D")]);
    let bad = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("D"), a("E")]);
    let c_good = OrderCompatibility::new(vec![a("A"), a("B")], vec![a("F"), a("C")]);
    let c_bad = OrderCompatibility::new(vec![a("A"), a("C")], vec![a("F"), a("D")]);
    let mut out = String::new();
    writeln!(out, "## E1  Figure 1, Examples 2–3").unwrap();
    writeln!(out, "{}", rel.render()).unwrap();
    writeln!(
        out,
        "paper: [A,B,C] ↦ [F,E,D] consistent, [A,B,C] ↦ [F,D,E] falsified  |  measured: {} / {}",
        ok(od_holds(&rel, &good)),
        violation(&rel, &bad)
    )
    .unwrap();
    writeln!(
        out,
        "paper: [A,B] ~ [F,C] consistent, [A,C] ~ [F,D] falsified          |  measured: {} / {}",
        ok(od_core::check::compatibility_holds(&rel, &c_good)),
        ok_not(od_core::check::compatibility_holds(&rel, &c_bad))
    )
    .unwrap();
    out
}

/// E2 — Figure 2 / Example 4: the date hierarchy ODs hold on a generated
/// calendar, the composite OD of Example 4 is inferable (Theorem 10) and holds.
pub fn exp_e2_dates(scale: ExperimentScale) -> String {
    let rel = generate_date_dim(1998, scale.calendar_days, 2_450_000);
    let schema = rel.schema().clone();
    let mut out = String::new();
    writeln!(out, "## E2  Figure 2 date hierarchy ({} days)", rel.len()).unwrap();
    let mut holds = 0;
    let all = dates::figure_2_ods(&schema);
    for (name, od) in &all {
        let v = od_holds(&rel, od);
        if v {
            holds += 1;
        } else {
            writeln!(out, "  UNEXPECTED violation of {name}").unwrap();
        }
    }
    writeln!(
        out,
        "paper: every path of Figure 2 is an OD  |  measured: {holds}/{} hold",
        all.len()
    )
    .unwrap();
    let mut falsified = 0;
    let negatives = dates::negative_control_ods(&schema);
    for (_, od) in &negatives {
        if !od_holds(&rel, od) {
            falsified += 1;
        }
    }
    writeln!(
        out,
        "paper: month-name and other non-hierarchy orders are NOT ODs (Section 1)  |  measured: {falsified}/{} falsified",
        negatives.len()
    )
    .unwrap();
    // Example 4 via inference.
    let m = dates::figure_2_odset(&schema);
    let d = Decider::new(&m);
    let goal = OrderDependency::new(
        od_optimizer::names_to_list(&schema, &["d_date"]),
        od_optimizer::names_to_list(
            &schema,
            &["d_year", "d_quarter", "d_month", "d_day_of_month"],
        ),
    );
    writeln!(
        out,
        "paper (Example 4): suffixing an equivalent path is inferable (Theorem 10)  |  measured: implied={}, holds on data={}",
        d.implies(&goal),
        od_holds(&rel, &goal)
    )
    .unwrap();
    out
}

/// E3 — Example 1: the ORDER BY/GROUP BY reduction that needs an OD, not an FD.
pub fn exp_e3_example1(scale: ExperimentScale) -> String {
    let table = daily_sales_table(2000, scale.calendar_days, scale.stores, 7);
    let schema = table.schema().clone();
    let mut catalog = od_engine::Catalog::new();
    catalog.add_table(table);
    let mut registry = od_optimizer::OdRegistry::new();
    registry.declare_od(&schema, &["month"], &["quarter"]);
    let mut fd_only = od_optimizer::OdRegistry::new();
    fd_only.declare_fd(&schema, &["month"], &["quarter"]);

    let rev = schema.attr_by_name("revenue").unwrap();
    let q = aggregation_query(
        &catalog,
        "daily_sales",
        &["year", "quarter", "month"],
        &["year", "quarter", "month"],
        vec![Aggregate::Sum(rev), Aggregate::CountStar],
    );
    let baseline = q.plan_baseline(&mut registry);
    let fd_plan = q.plan_optimized(&catalog, &mut fd_only);
    let od_plan = q.plan_optimized(&catalog, &mut registry);

    let t0 = Instant::now();
    let (b_base, m_base) = execute(&baseline, &catalog);
    let base_time = t0.elapsed();
    let t1 = Instant::now();
    let (b_od, m_od) = execute(&od_plan, &catalog);
    let od_time = t1.elapsed();

    // The reduce algorithms themselves.
    let order = od_optimizer::names_to_list(&schema, &["year", "quarter", "month"]);
    let via_fd = reduce_order_by_fd(&order, &fd_only.fds("daily_sales"));
    let via_od = reduce_order_by_od(&order, "daily_sales", &mut registry);

    let mut out = String::new();
    writeln!(out, "## E3  Example 1 — ORDER BY year, quarter, month").unwrap();
    writeln!(
        out,
        "paper: the FD month → quarter cannot drop quarter from the ORDER BY; the OD month ↦ quarter can"
    )
    .unwrap();
    writeln!(
        out,
        "measured: Reduce (FD)   keeps {} attributes: {}",
        via_fd.len(),
        schema_list(&schema, &via_fd)
    )
    .unwrap();
    writeln!(
        out,
        "measured: Reduce-2 (OD) keeps {} attributes: {}",
        via_od.len(),
        schema_list(&schema, &via_od)
    )
    .unwrap();
    writeln!(
        out,
        "plans: baseline sorts={} | FD-only sorts={} | OD-aware sorts={}",
        baseline.sort_count(),
        fd_plan.sort_count(),
        od_plan.sort_count()
    )
    .unwrap();
    writeln!(
        out,
        "execution ({} rows): baseline {:?} ({} rows sorted) vs OD plan {:?} (0 rows sorted); identical results: {}",
        m_base.rows_scanned,
        base_time,
        m_base.sort_rows,
        od_time,
        same_results(&b_base, &b_od)
    )
    .unwrap();
    debug_assert_eq!(m_od.sorts_performed, 0);
    out
}

/// Per-query outcome of the E4 suite.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Query label.
    pub name: String,
    /// Part of the 13-query core set?
    pub core: bool,
    /// Baseline wall-clock.
    pub baseline: std::time::Duration,
    /// Rewritten wall-clock.
    pub rewritten: std::time::Duration,
    /// Percentage improvement of the rewritten plan (positive = faster).
    pub gain_pct: f64,
    /// Fraction of fact partitions scanned by the rewritten plan.
    pub partitions_scanned_frac: f64,
    /// Results identical?
    pub identical: bool,
}

/// E4 — the TPC-DS-style date-surrogate rewrite over the 18-query suite.
pub fn exp_e4_tpcds(scale: ExperimentScale) -> (String, Vec<SuiteOutcome>) {
    let mut wh = build_warehouse(WarehouseConfig {
        n_days: scale.calendar_days.max(300),
        fact_rows: scale.fact_rows,
        ..WarehouseConfig::default()
    });
    let suite = date_query_suite(&wh);
    let mut outcomes = Vec::new();
    for sq in &suite {
        let baseline = sq.query.plan_baseline();
        let optimized = sq
            .query
            .plan_optimized(&wh.catalog, &mut wh.registry)
            .expect("rewrite");
        // Run baseline and rewritten plans (two repetitions, keep the better).
        let time = |plan: &od_engine::PhysicalPlan| {
            let ((b, m), best) =
                timing::best_of_with(2, "bench.e4.execute", || execute(plan, &wh.catalog));
            (b, m, best)
        };
        let (b1, _m1, t1) = time(&baseline);
        let (b2, m2, t2) = time(&optimized);
        let gain = 100.0 * (t1.as_secs_f64() - t2.as_secs_f64()) / t1.as_secs_f64();
        outcomes.push(SuiteOutcome {
            name: sq.name.clone(),
            core: sq.core,
            baseline: t1,
            rewritten: t2,
            gain_pct: gain,
            partitions_scanned_frac: if m2.partitions_total > 0 {
                m2.partitions_scanned as f64 / m2.partitions_total as f64
            } else {
                1.0
            },
            identical: same_results(&b1, &b2),
        });
    }
    let core: Vec<&SuiteOutcome> = outcomes.iter().filter(|o| o.core).collect();
    let avg_core = core.iter().map(|o| o.gain_pct).sum::<f64>() / core.len() as f64;
    let avg_all = outcomes.iter().map(|o| o.gain_pct).sum::<f64>() / outcomes.len() as f64;
    let improved = outcomes.iter().filter(|o| o.gain_pct > 0.0).count();

    let mut out = String::new();
    writeln!(
        out,
        "## E4  Date-surrogate rewrite over the {}-query suite",
        outcomes.len()
    )
    .unwrap();
    writeln!(
        out,
        "{:<6} {:>5} {:>12} {:>12} {:>8}  {:>10} same",
        "query", "core", "baseline", "rewritten", "gain%", "parts"
    )
    .unwrap();
    for o in &outcomes {
        writeln!(
            out,
            "{:<6} {:>5} {:>12?} {:>12?} {:>7.1}%  {:>9.0}% {}",
            o.name,
            o.core,
            o.baseline,
            o.rewritten,
            o.gain_pct,
            o.partitions_scanned_frac * 100.0,
            o.identical
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: 13 TPC-DS queries matched the rewrite, every one improved, average gain 48% (later 18 queries)"
    )
    .unwrap();
    writeln!(
        out,
        "measured: {}/{} queries improved; average gain over the 13-query core set {:.1}% (all 18: {:.1}%)",
        improved,
        outcomes.len(),
        avg_core,
        avg_all
    )
    .unwrap();
    (out, outcomes)
}

/// E5 — Example 5 taxes: Union-composed ODs, monotone derived columns, and the
/// order-by answered by the income index.
pub fn exp_e5_tax(scale: ExperimentScale) -> String {
    let table = tax::tax_table(scale.tax_rows, 3);
    let schema = table.schema().clone();
    let rel = table.relation.clone();
    let m = tax::tax_odset(&schema);
    let d = Decider::new(&m);
    let income = schema.attr_by_name("income").unwrap();
    let bracket = schema.attr_by_name("bracket").unwrap();
    let payable = schema.attr_by_name("payable").unwrap();
    let union_goal = OrderDependency::new(vec![income], vec![bracket, payable]);

    let mut catalog = od_engine::Catalog::new();
    catalog.add_table(table);
    let mut registry = od_optimizer::OdRegistry::new();
    registry.declare_od(&schema, &["income"], &["bracket"]);
    registry.declare_od(&schema, &["income"], &["payable"]);
    let q = aggregation_query(
        &catalog,
        "taxes",
        &["bracket"],
        &["bracket", "payable"],
        vec![Aggregate::CountStar, Aggregate::Sum(payable)],
    );
    let mut no_ods = od_optimizer::OdRegistry::new();
    let baseline = q.plan_baseline(&mut no_ods);
    let optimized = q.plan_optimized(&catalog, &mut registry);
    let (b1, m1) = execute(&baseline, &catalog);
    let (b2, m2) = execute(&optimized, &catalog);

    let mut out = String::new();
    writeln!(out, "## E5  Example 5 — taxes ({} rows)", rel.len()).unwrap();
    writeln!(
        out,
        "paper: income ↦ bracket and income ↦ payable, hence income ↦ [bracket, payable] (Theorem 2)  |  measured: implied={}, holds={}",
        d.implies(&union_goal),
        od_holds(&rel, &union_goal)
    )
    .unwrap();
    writeln!(
        out,
        "paper: an ORDER BY bracket, payable can be answered via the income index  |  measured: baseline sorts={} ({} rows), OD plan sorts={}; identical results: {}",
        m1.sorts_performed,
        m1.sort_rows,
        m2.sorts_performed,
        same_results(&b1, &b2)
    )
    .unwrap();
    // Monotone derived columns (Section 2.2 / reference \[12\]).
    let derived = od_discovery::DerivedColumn {
        name: "g".into(),
        id: AttrId(4),
        expr: od_engine::Expr::Add(
            Box::new(od_engine::Expr::Div(
                Box::new(od_engine::Expr::col(income)),
                Box::new(od_engine::Expr::lit(100i64)),
            )),
            Box::new(od_engine::Expr::Sub(
                Box::new(od_engine::Expr::col(income)),
                Box::new(od_engine::Expr::lit(3i64)),
            )),
        ),
    };
    let auto = od_discovery::derived_column_ods(std::slice::from_ref(&derived), &[income]);
    writeln!(
        out,
        "paper: monotone generated columns yield ODs automatically  |  measured: derived {} OD(s) for G = income/100 + income - 3",
        auto.len()
    )
    .unwrap();
    out
}

/// E6 — soundness audit: everything the prover derives holds on data satisfying ℳ.
pub fn exp_e6_soundness() -> String {
    let mut out = String::new();
    writeln!(out, "## E6  Soundness of the axiom system (Theorem 1)").unwrap();
    // Figure 3 chain counterexample shape.
    let fig3 = fixtures::figure_3_relation(3);
    let s = fig3.schema();
    let a = s.attr_by_name("A").unwrap();
    let c = s.attr_by_name("C").unwrap();
    writeln!(
        out,
        "Figure 3: A and C swap while the chain stays compatible  |  measured: A ~ C falsified = {}",
        !od_core::check::compatibility_holds(&fig3, &OrderCompatibility::new(vec![a], vec![c]))
    )
    .unwrap();
    // Random ℳ over 4 attributes; witness tables satisfy ℳ; every prover-implied
    // OD (up to length 2) holds on them.
    let universe: Vec<AttrId> = (0..4).map(AttrId).collect();
    let mut schema = od_core::Schema::new("audit");
    for i in 0..4 {
        schema.add_attr(format!("a{i}"));
    }
    let sets = [
        OdSet::from_ods([OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)])]),
        OdSet::from_ods([
            OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]),
            OrderDependency::new(vec![AttrId(1)], vec![AttrId(2)]),
        ]),
        OdSet::from_ods([
            OrderDependency::new(vec![AttrId(0), AttrId(1)], vec![AttrId(2)]),
            OrderDependency::new(vec![AttrId(3)], vec![AttrId(0)]),
        ]),
    ];
    let mut checked = 0usize;
    let mut violations = 0usize;
    for m in &sets {
        let table = witness_table(m, &schema);
        assert!(m.satisfied_by(&table));
        let prover = Prover::new(m);
        for od in od_infer::witness::enumerate_ods(&universe, 2) {
            if prover.implies(&od) {
                checked += 1;
                if !od_holds(&table, &od) {
                    violations += 1;
                }
            }
        }
    }
    writeln!(
        out,
        "paper: every derivable OD holds in every model of ℳ  |  measured: {checked} implied ODs checked on witness models, {violations} violations"
    )
    .unwrap();
    out
}

/// E7 — completeness construction: `split(ℳ)` append `swap(ℳ)`.
pub fn exp_e7_witness() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## E7  Completeness construction (Section 4, Figures 4–9)"
    )
    .unwrap();
    let mut schema = od_core::Schema::new("w");
    for i in 0..4 {
        schema.add_attr(format!("a{i}"));
    }
    let universe: Vec<AttrId> = (0..4).map(AttrId).collect();
    let sets = [
        ("∅", OdSet::new()),
        (
            "{A ↦ B}",
            OdSet::from_ods([OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)])]),
        ),
        (
            "{A ↦ B, B ↦ C}",
            OdSet::from_ods([
                OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]),
                OrderDependency::new(vec![AttrId(1)], vec![AttrId(2)]),
            ]),
        ),
        (
            "{[] ↦ D, AB ↦ C}",
            OdSet::from_ods([
                OrderDependency::new(AttrList::empty(), vec![AttrId(3)]),
                OrderDependency::new(vec![AttrId(0), AttrId(1)], vec![AttrId(2)]),
            ]),
        ),
    ];
    for (name, m) in &sets {
        let table = witness_table(m, &schema);
        let (soundness, completeness) = completeness_gaps(m, &table, &universe, 2);
        writeln!(
            out,
            "ℳ = {name:<18} rows={:<4} satisfies ℳ: {}  soundness gaps: {}  completeness gaps: {}",
            table.len(),
            m.satisfied_by(&table),
            soundness.len(),
            completeness.len()
        )
        .unwrap();
    }
    writeln!(out, "paper: a table exists that satisfies ℳ and falsifies everything outside ℳ⁺ (Theorem 17)  |  measured: all gaps are 0").unwrap();
    out
}

/// E8 — ODs subsume FDs (Theorems 13, 15, 16).
pub fn exp_e8_fd_subsumption() -> String {
    let mut out = String::new();
    writeln!(out, "## E8  ODs subsume FDs (Theorems 13, 15, 16)").unwrap();
    let m = OdSet::from_ods([
        OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]),
        OrderDependency::new(vec![AttrId(1), AttrId(2)], vec![AttrId(3)]),
    ]);
    let mut proved = 0;
    let mut total = 0;
    for lhs in [&[0u32][..], &[0, 2], &[1, 2], &[0, 1, 2]] {
        for rhs in [&[1u32][..], &[3], &[1, 3]] {
            total += 1;
            let fd = od_core::FunctionalDependency::new(
                lhs.iter().map(|&i| AttrId(i)),
                rhs.iter().map(|&i| AttrId(i)),
            );
            if let Some(proof) = od_infer::fd_bridge::prove_fd(&m, &fd) {
                proof.verify(&m.ods()).expect("generated FD proofs verify");
                proved += 1;
            }
        }
    }
    writeln!(
        out,
        "paper: every FD consequence has an OD-axiom derivation  |  measured: {proved}/{total} candidate FDs implied by the FD fragment, each with a machine-checked OD proof"
    )
    .unwrap();
    // Theorem 15: splits and swaps are the only two failure modes.
    let rel = fixtures::figure_1_relation();
    let s = rel.schema();
    let bad = OrderDependency::new(
        vec![
            s.attr_by_name("A").unwrap(),
            s.attr_by_name("B").unwrap(),
            s.attr_by_name("C").unwrap(),
        ],
        vec![
            s.attr_by_name("F").unwrap(),
            s.attr_by_name("D").unwrap(),
            s.attr_by_name("E").unwrap(),
        ],
    );
    writeln!(
        out,
        "Theorem 15 on Figure 1: the falsified OD fails by a {}",
        match check_od(&rel, &bad) {
            Err(v) if v.is_swap() => "swap",
            Err(_) => "split",
            Ok(()) => "(nothing!)",
        }
    )
    .unwrap();
    out
}

/// E9 — the implication decider / theorem prover (future-work item of the paper).
pub fn exp_e9_implication() -> String {
    let mut out = String::new();
    writeln!(out, "## E9  Implication decision and proof search").unwrap();
    for n in [4usize, 6, 8, 10] {
        let ods: Vec<OrderDependency> = (0..n - 1)
            .map(|i| OrderDependency::new(vec![AttrId(i as u32)], vec![AttrId(i as u32 + 1)]))
            .collect();
        let m = OdSet::from_ods(ods);
        let goal = OrderDependency::new(vec![AttrId(0)], vec![AttrId(n as u32 - 1)]);
        let t = Instant::now();
        let prover = Prover::new(&m);
        let outcome = prover.prove(&goal);
        let elapsed = t.elapsed();
        let kind = match &outcome {
            Outcome::Proved(p) => format!("proof with {} steps", p.len()),
            Outcome::ImpliedSemantically => "implied (no syntactic proof found)".into(),
            Outcome::NotImplied(_) => "NOT implied".into(),
        };
        writeln!(
            out,
            "chain of {n} attributes: transitive goal decided + proved in {elapsed:?} → {kind}"
        )
        .unwrap();
    }
    writeln!(out, "paper (future work): an efficient theorem prover for ℳ ⊨ X ↦ Y  |  measured: exact decision plus axiom-level proofs for the derivable goals above").unwrap();
    out
}

/// E12 — width-3 node-based lattice discovery: candidate-set propagation and
/// key-based node deletion keep the third context level interactive, with a
/// per-level pruned-vs-validated breakdown.
pub fn exp_e12_width3(scale: ExperimentScale) -> String {
    use od_setbased::{discover_statements, LatticeConfig};
    let mut out = String::new();
    writeln!(out, "## E12  Width-3 node-based lattice traversal").unwrap();
    for (name, rel) in [
        ("taxes", tax::generate_taxes(scale.tax_rows, 7)),
        (
            "date_dim",
            generate_date_dim(1998, scale.calendar_days, 2_450_000),
        ),
    ] {
        let config = LatticeConfig {
            max_context: 3,
            ..Default::default()
        };
        let t = Instant::now();
        let d = discover_statements(&rel, &config);
        let elapsed = t.elapsed();
        writeln!(
            out,
            "{name} ({} rows × {} attrs): {} minimal statements in {elapsed:?}",
            rel.len(),
            rel.schema().arity(),
            d.minimal_statements().len(),
        )
        .unwrap();
        write!(out, "{}", d.summary()).unwrap();
    }
    writeln!(
        out,
        "claim (FASTOD line): propagated candidate sets + key deletion make width-3 \
         contexts tractable  |  measured: validated counts stay a small fraction of \
         the propagated-away slots above"
    )
    .unwrap();
    out
}

/// E13 — width-4 lattice discovery on bitset attribute sets: `u64`-mask
/// contexts, candidate sets and partition keys, context-sharded level
/// expansion, and decider implication batched into one round-trip per level
/// make the fourth context level (the new default) interactive.
pub fn exp_e13_width4(scale: ExperimentScale, max_context: usize) -> String {
    use od_setbased::{discover_statements, LatticeConfig};
    let mut out = String::new();
    writeln!(
        out,
        "## E13  Width-{max_context} bitset lattice traversal (AttrSet masks)"
    )
    .unwrap();
    for (name, rel) in [
        ("taxes", tax::generate_taxes(scale.tax_rows, 7)),
        (
            "date_dim",
            generate_date_dim(1998, scale.calendar_days, 2_450_000),
        ),
    ] {
        let config = LatticeConfig {
            max_context,
            ..Default::default()
        };
        let t = Instant::now();
        let d = discover_statements(&rel, &config);
        let elapsed = t.elapsed();
        writeln!(
            out,
            "{name} ({} rows × {} attrs): {} minimal statements in {elapsed:?} — \
             {} decider round-trips over {} levels",
            rel.len(),
            rel.schema().arity(),
            d.minimal_statements().len(),
            d.stats.decider_rounds,
            d.level_stats().len(),
        )
        .unwrap();
        write!(out, "{}", d.summary()).unwrap();
        if d.stats.decider_rounds > d.level_stats().len() {
            writeln!(out, "  UNEXPECTED: more decider rounds than levels").unwrap();
        }
    }
    writeln!(
        out,
        "claim: bitset candidate propagation + per-level decider batching keep \
         width-{max_context} interactive  |  measured: one decider round per level and \
         propagation-dominated deep levels above"
    )
    .unwrap();
    out
}

/// [`exp_e12_width3`] under a scoped metrics registry: the report's
/// deterministic section carries the lattice counters (nodes, cache,
/// propagation, partition-class histograms) for `BENCH_e12.json`.
pub fn exp_e12_width3_with_metrics(scale: ExperimentScale) -> (String, od_obs::MetricsReport) {
    metrics::capture("e12", || exp_e12_width3(scale))
}

/// [`exp_e13_width4`] under a scoped metrics registry, for `BENCH_e13.json`.
pub fn exp_e13_width4_with_metrics(
    scale: ExperimentScale,
    max_context: usize,
) -> (String, od_obs::MetricsReport) {
    metrics::capture("e13", || exp_e13_width4(scale, max_context))
}

/// E14 — the columnar core at scale: struct-of-arrays dictionary encoding,
/// radix-bucketed partition refinement, and width-2 discovery throughput on
/// the million-row zipfian + sorted-with-noise table of
/// [`od_workload::scale`].  Reports rows/sec for relation build (including
/// the columnar encode), for partition refinement on code columns versus the
/// row-oriented Value-comparison baseline (same products, same run), and for
/// end-to-end width-2 discovery.
pub fn exp_e14_columnar(rows: usize) -> String {
    run_e14(rows, 1)
}

/// [`exp_e14_columnar`] under a scoped metrics registry, for
/// `BENCH_e14.json`.  The relation is built *inside* the capture, so the
/// encoder's `relation.encode` counters and the discovery layer's
/// `discovery.radix_passes` land in the report's deterministic section —
/// wall-clock readings stay confined to the human-readable text and the
/// non-deterministic section.
pub fn exp_e14_columnar_with_metrics(rows: usize) -> (String, od_obs::MetricsReport) {
    metrics::capture("e14", || run_e14(rows, 1))
}

/// E14 with an explicit discovery thread count — exists so the determinism
/// tests can pin the deterministic metrics section byte-identical across
/// thread counts; the headline entry points stay serial.
#[doc(hidden)]
pub fn exp_e14_columnar_with_metrics_threads(
    rows: usize,
    threads: usize,
) -> (String, od_obs::MetricsReport) {
    metrics::capture("e14", || run_e14(rows, threads))
}

fn run_e14(rows: usize, threads: usize) -> String {
    use od_setbased::{discover_statements, LatticeConfig, RefineScratch, StrippedPartition};
    use od_workload::{generate_scale_rows, scale_schema, SCALE_1M};

    let cfg = SCALE_1M.with_rows(rows);
    let mut out = String::new();
    writeln!(
        out,
        "## E14  Columnar core at scale (SoA dictionaries + radix partitions)"
    )
    .unwrap();
    let raw = generate_scale_rows(&cfg);
    let t = Instant::now();
    let rel = od_core::Relation::from_rows(scale_schema(), raw).expect("schema-conformant rows");
    let build = t.elapsed();
    od_obs::add("e14.rows", rel.len() as u64);
    writeln!(
        out,
        "scale table: {} rows × {} attrs (zipfian + sorted-with-noise, seed {:#x})",
        rel.len(),
        rel.schema().arity(),
        cfg.seed
    )
    .unwrap();
    writeln!(
        out,
        "build: from_rows incl. dictionary encode in {build:?} ({} rows/sec)",
        rows_per_sec(rel.len(), build)
    )
    .unwrap();

    // Refinement workload: Π_{{A}} for every attribute, each refined by every
    // other attribute — all width-≤2 partition products, on three code paths.
    let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();

    // Each path runs twice and keeps its best time: the first iteration in a
    // fresh process pays page faults and CPU ramp-up that have nothing to do
    // with the algorithms under test.

    // 1. Row-at-a-time Value baseline: every bucketing sorts `(&Value, row)`
    //    pairs with `Value::cmp` — what a row-oriented engine without rank
    //    columns pays per product.
    let (value_parts, value_time) = timed_best_of_2(|| {
        let mut parts: Vec<Vec<Vec<u32>>> = Vec::new();
        for (i, &a) in attrs.iter().enumerate() {
            let single = value_bucket(&rel, a, 0..rel.len() as u32);
            for (j, &b) in attrs.iter().enumerate() {
                if i != j {
                    let mut refined = Vec::new();
                    for class in &single {
                        refined.extend(value_bucket(&rel, b, class.iter().copied()));
                    }
                    refined.sort_by_key(|c| c[0]);
                    parts.push(refined);
                }
            }
            parts.push(single);
        }
        parts
    });

    // 2. The pre-refactor rank-column pipeline: codes from per-attribute
    //    Value-comparison sorts, bucketing via comparison sorts of the
    //    (code, row) pairs.
    let (codesort_parts, codesort_time) = timed_best_of_2(|| {
        let base_codes: Vec<Vec<u32>> = attrs.iter().map(|&a| rel.rank_column_by_sort(a)).collect();
        let mut parts: Vec<Vec<Vec<u32>>> = Vec::new();
        for (i, ca) in base_codes.iter().enumerate() {
            let single =
                comparison_bucket((0..rel.len() as u32).map(|row| (ca[row as usize], row)));
            for (j, cb) in base_codes.iter().enumerate() {
                if i != j {
                    let mut refined = Vec::new();
                    for class in &single {
                        refined.extend(comparison_bucket(
                            class.iter().map(|&row| (cb[row as usize], row)),
                        ));
                    }
                    refined.sort_by_key(|c| c[0]);
                    parts.push(refined);
                }
            }
            parts.push(single);
        }
        parts
    });

    // 3. Columnar path: codes are a by-product of construction (shared
    //    dictionary encoding), bucketing goes through the reused radix scratch.
    let enc = rel.encoding();
    let ((codes_parts, radix_passes), columnar) = timed_best_of_2(|| {
        let mut scratch = RefineScratch::default();
        let mut parts: Vec<StrippedPartition> = Vec::new();
        for i in 0..attrs.len() {
            let p = StrippedPartition::by_codes_with(enc.codes(i), &mut scratch);
            for j in 0..attrs.len() {
                if i != j {
                    parts.push(p.refine_by_with(enc.codes(j), &mut scratch));
                }
            }
            parts.push(p);
        }
        (parts, scratch.radix_passes())
    });
    od_obs::add("e14.refine.radix_passes", radix_passes);
    let speedup = value_time.as_secs_f64() / columnar.as_secs_f64().max(1e-9);
    let speedup_codesort = codesort_time.as_secs_f64() / columnar.as_secs_f64().max(1e-9);
    let parts_match = codes_parts.len() == value_parts.len()
        && codes_parts.len() == codesort_parts.len()
        && codes_parts
            .iter()
            .zip(&value_parts)
            .zip(&codesort_parts)
            .all(|((p, v), c)| {
                let classes = p.class_vecs();
                classes == *v && classes == *c
            });
    writeln!(
        out,
        "refinement ({} width-≤2 products, identical partitions on all three paths):",
        codes_parts.len()
    )
    .unwrap();
    writeln!(
        out,
        "  row-at-a-time Value comparisons:               {value_time:?}"
    )
    .unwrap();
    writeln!(
        out,
        "  comparison-sorted rank codes (pre-refactor):   {codesort_time:?}"
    )
    .unwrap();
    writeln!(
        out,
        "  columnar radix codes:                          {columnar:?}  \
         ({speedup:.1}x vs Values, {speedup_codesort:.1}x vs code sorts)"
    )
    .unwrap();
    if !parts_match {
        writeln!(
            out,
            "  UNEXPECTED: the three refinement paths produced different partitions"
        )
        .unwrap();
    }
    if rows >= 250_000 && speedup < 3.0 {
        writeln!(
            out,
            "  UNEXPECTED: columnar refinement below the 3x bar against Value comparisons"
        )
        .unwrap();
    }

    // End-to-end width-2 discovery on the codes path.
    let config = LatticeConfig {
        max_context: 2,
        threads,
        ..Default::default()
    };
    let t = Instant::now();
    let d = discover_statements(&rel, &config);
    let disc = t.elapsed();
    writeln!(
        out,
        "width-2 discovery: {} minimal statements in {disc:?} ({} rows/sec)",
        d.minimal_statements().len(),
        rows_per_sec(rel.len(), disc)
    )
    .unwrap();
    write!(out, "{}", d.summary()).unwrap();
    writeln!(
        out,
        "claim: dictionary codes + radix bucketing turn refinement into linear counting \
         passes, ≥3x over row-at-a-time comparisons at scale  |  measured: {speedup:.1}x \
         on {} rows",
        rel.len()
    )
    .unwrap();
    out
}

/// E16 — partition products through the deep lattice: every ordered pair of
/// per-attribute CSR partitions Π_A · Π_B computed on three product paths in
/// the same run — per-class hash grouping (the pre-refactor baseline),
/// comparison sorts of the packed class-id keys, and the packed-u64 radix
/// kernel — with bit-identical partitions asserted across all three.  Then
/// width-2/3/4 discovery throughput on the same scale table, where every
/// level ≥ 2 partition is a memoized radix product.
pub fn exp_e16_lattice(rows: usize) -> String {
    run_e16(rows, 1)
}

/// [`exp_e16_lattice`] under a scoped metrics registry, for
/// `BENCH_e16.json`.  The product pass counts (`e16.product.radix_passes`,
/// `discovery.product_radix_passes`) land in the report's deterministic
/// section; wall-clock readings stay confined to the human-readable text and
/// the non-deterministic section.
pub fn exp_e16_lattice_with_metrics(rows: usize) -> (String, od_obs::MetricsReport) {
    metrics::capture("e16", || run_e16(rows, 1))
}

/// E16 with an explicit discovery thread count — exists so the determinism
/// tests can pin the deterministic metrics section byte-identical across
/// thread counts; the headline entry points stay serial.
#[doc(hidden)]
pub fn exp_e16_lattice_with_metrics_threads(
    rows: usize,
    threads: usize,
) -> (String, od_obs::MetricsReport) {
    metrics::capture("e16", || run_e16(rows, threads))
}

fn run_e16(rows: usize, threads: usize) -> String {
    use od_setbased::{
        discover_statements, ClassCodes, LatticeConfig, RefineScratch, StrippedPartition,
    };
    use od_workload::{scale_relation, SCALE_1M};

    let cfg = SCALE_1M.with_rows(rows);
    let mut out = String::new();
    writeln!(
        out,
        "## E16  Partition products through the deep lattice (CSR + radix keys)"
    )
    .unwrap();
    let rel = scale_relation(&cfg);
    od_obs::add("e16.rows", rel.len() as u64);
    writeln!(
        out,
        "scale table: {} rows × {} attrs (zipfian + sorted-with-noise, seed {:#x})",
        rel.len(),
        rel.schema().arity(),
        cfg.seed
    )
    .unwrap();

    // Base partitions and their dense class-code columns, shared by all three
    // product paths — exactly what the lattice memoizes at level 1.
    let enc = rel.encoding();
    let arity = rel.schema().arity();
    let mut scratch = RefineScratch::default();
    let parts: Vec<StrippedPartition> = (0..arity)
        .map(|i| StrippedPartition::by_codes_with(enc.codes(i), &mut scratch))
        .collect();
    let codes: Vec<ClassCodes> = parts.iter().map(StrippedPartition::class_codes).collect();

    // Each path runs twice and keeps its best time (see `timed_best_of_2`).
    // 1. Per-class hash grouping: what the pre-CSR product paid — one
    //    HashMap insert per covered row.
    let (hash_parts, hash_time) = timed_best_of_2(|| {
        let mut v: Vec<StrippedPartition> = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            for (j, c) in codes.iter().enumerate() {
                if i != j {
                    v.push(p.product_hash(c));
                }
            }
        }
        v
    });

    // 2. Comparison sorts of the same packed (class_a, class_b) u64 keys.
    let (cmp_parts, cmp_time) = timed_best_of_2(|| {
        let mut scratch = RefineScratch::default();
        let mut v: Vec<StrippedPartition> = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            for (j, c) in codes.iter().enumerate() {
                if i != j {
                    v.push(p.product_comparison(c, &mut scratch));
                }
            }
        }
        v
    });

    // 3. The radix kernel the lattice runs: one stable LSD pass set over the
    //    packed keys through the reused scratch.
    let ((radix_parts, product_passes), radix_time) = timed_best_of_2(|| {
        let mut scratch = RefineScratch::default();
        let mut v: Vec<StrippedPartition> = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            for (j, c) in codes.iter().enumerate() {
                if i != j {
                    v.push(p.product_with(c, &mut scratch));
                }
            }
        }
        let passes = scratch.product_radix_passes();
        (v, passes)
    });
    od_obs::add("e16.product.radix_passes", product_passes);
    let speedup_hash = hash_time.as_secs_f64() / radix_time.as_secs_f64().max(1e-9);
    let speedup_cmp = cmp_time.as_secs_f64() / radix_time.as_secs_f64().max(1e-9);
    let parts_match = radix_parts == hash_parts && radix_parts == cmp_parts;
    writeln!(
        out,
        "products ({} ordered pairs, identical CSR partitions on all three paths):",
        radix_parts.len()
    )
    .unwrap();
    writeln!(
        out,
        "  per-class hash grouping (pre-CSR baseline):    {hash_time:?}"
    )
    .unwrap();
    writeln!(
        out,
        "  comparison-sorted packed keys:                 {cmp_time:?}"
    )
    .unwrap();
    writeln!(
        out,
        "  radix-sorted packed keys:                      {radix_time:?}  \
         ({speedup_hash:.1}x vs hash, {speedup_cmp:.1}x vs comparison sorts, \
         {product_passes} radix passes)"
    )
    .unwrap();
    if !parts_match {
        writeln!(
            out,
            "  UNEXPECTED: the three product paths produced different partitions"
        )
        .unwrap();
    }
    if rows >= 250_000 && speedup_hash < 3.0 {
        writeln!(
            out,
            "  UNEXPECTED: radix products below the 3x bar against hash grouping"
        )
        .unwrap();
    }

    // Deep discovery on the same table: every level ≥ 2 partition is a
    // memoized radix product of Π_{context \ last} with the last attribute's
    // class codes.
    for width in [2usize, 3, 4] {
        let config = LatticeConfig {
            max_context: width,
            threads,
            ..Default::default()
        };
        let t = Instant::now();
        let d = discover_statements(&rel, &config);
        let disc = t.elapsed();
        writeln!(
            out,
            "width-{width} discovery: {} minimal statements in {disc:?} \
             ({} rows/sec, {} product radix passes)",
            d.minimal_statements().len(),
            rows_per_sec(rel.len(), disc),
            d.stats.product_radix_passes
        )
        .unwrap();
    }
    writeln!(
        out,
        "claim: memoized partition products reduce to one packed-u64 radix pass set per \
         pair, ≥3x over per-class hash grouping at scale  |  measured: {speedup_hash:.1}x \
         on {} rows",
        rel.len()
    )
    .unwrap();
    out
}

/// E17 — multi-process lattice traversal: the same width-4 discovery as E16,
/// with the data plane (partition refinement + statement scans) sharded
/// across `workers` worker *processes* connected over length-prefixed pipe
/// frames.  The distributed run's minimal statements, verdicts, and stats
/// are asserted bit-identical to the threaded engine **in-run**, and at
/// scale the wall-clock must clear a 1.3× bar against it.  Workers are the
/// current binary re-executed with `--od-worker` (`reproduce` installs the
/// hook), each loading its relation copy once from a columnar snapshot.
pub fn exp_e17_dist(rows: usize, workers: usize) -> String {
    run_e17(rows, workers, &WorkerLauncher::self_exec()).0
}

/// [`exp_e17_dist`] under a scoped metrics registry, for `BENCH_e17.json`.
/// The merged discovery counters land in the deterministic section —
/// byte-identical across worker counts by the merge rules — while transport
/// telemetry (`dist.workers`, `dist.frames`, `dist.bytes`) varies with the
/// worker count and is confined to the non-deterministic section.
pub fn exp_e17_dist_with_metrics(rows: usize, workers: usize) -> (String, od_obs::MetricsReport) {
    exp_e17_dist_with_metrics_launcher(rows, workers, &WorkerLauncher::self_exec())
}

/// E17 with an explicit worker launcher — exists so test binaries (which
/// cannot re-exec themselves into worker mode) can drive the experiment
/// through in-process protocol workers or an external worker binary.
#[doc(hidden)]
pub fn exp_e17_dist_with_metrics_launcher(
    rows: usize,
    workers: usize,
    launcher: &WorkerLauncher,
) -> (String, od_obs::MetricsReport) {
    let ((report, stats), mut metrics) = metrics::capture("e17", || run_e17(rows, workers, launcher));
    metrics.set_nondeterministic("dist.workers", stats.workers as f64);
    metrics.set_nondeterministic("dist.frames", stats.frames as f64);
    metrics.set_nondeterministic("dist.bytes", stats.bytes as f64);
    (report, metrics)
}

fn run_e17(rows: usize, workers: usize, launcher: &WorkerLauncher) -> (String, DistStats) {
    use od_setbased::{discover_statements, discover_statements_dist, LatticeConfig};
    use od_workload::{scale_relation, SCALE_1M};

    let cfg = SCALE_1M.with_rows(rows);
    let mut out = String::new();
    writeln!(
        out,
        "## E17  Multi-process lattice traversal ({workers} context-sharded workers over pipes)"
    )
    .unwrap();
    let rel = scale_relation(&cfg);
    od_obs::add("e17.rows", rel.len() as u64);
    writeln!(
        out,
        "scale table: {} rows × {} attrs (zipfian + sorted-with-noise, seed {:#x})",
        rel.len(),
        rel.schema().arity(),
        cfg.seed
    )
    .unwrap();

    // The threaded path at its E16 headline configuration (serial scans):
    // the wall-clock baseline *and* the bit-identity oracle.
    let config = LatticeConfig {
        max_context: 4,
        ..Default::default()
    };
    let (local, local_time) = timed_best_of_2(|| discover_statements(&rel, &config));
    writeln!(
        out,
        "threaded engine (threads=1): {} minimal statements in {local_time:?} ({} rows/sec)",
        local.minimal_statements().len(),
        rows_per_sec(rel.len(), local_time)
    )
    .unwrap();

    // The distributed run, timed end-to-end: worker spawn, snapshot
    // streaming, prewarm, the sharded traversal, and shutdown/reap all
    // count — a fair bar for "spin up processes and still win".
    let dist_config = LatticeConfig {
        workers,
        ..config
    };
    let (dist_result, dist_time) =
        timed_best_of_2(|| discover_statements_dist(&rel, &dist_config, launcher));
    let (dist, stats) = match dist_result {
        Ok(pair) => pair,
        Err(e) => {
            writeln!(out, "UNEXPECTED: distributed traversal failed: {e}").unwrap();
            return (out, DistStats::default());
        }
    };
    let speedup = local_time.as_secs_f64() / dist_time.as_secs_f64().max(1e-9);
    writeln!(
        out,
        "dist engine ({} workers):     {} minimal statements in {dist_time:?} \
         ({} rows/sec, {speedup:.2}x vs threaded; {} frames, {} wire bytes)",
        stats.workers,
        dist.minimal_statements().len(),
        rows_per_sec(rel.len(), dist_time),
        stats.frames,
        stats.bytes
    )
    .unwrap();

    let identical = local.minimal_statements() == dist.minimal_statements()
        && local.verdicts() == dist.verdicts()
        && local.stats == dist.stats
        && local.level_stats() == dist.level_stats();
    writeln!(
        out,
        "verdicts, minimal statements, and stats bit-identical across engines: {}",
        ok(identical)
    )
    .unwrap();
    if !identical {
        writeln!(
            out,
            "  UNEXPECTED: the distributed engine diverged from the threaded engine"
        )
        .unwrap();
    }
    // The ≥1.3x wall-clock bar only makes sense where two workers can
    // actually run at once: on a single-CPU host the processes time-slice
    // one core and the dist path can only pay for its snapshot + merge,
    // so the ratio is reported but not judged.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if rows >= 250_000 && workers >= 2 && cores >= 2 && speedup < 1.3 {
        writeln!(
            out,
            "  UNEXPECTED: {workers}-worker traversal below the 1.3x bar vs the threaded path"
        )
        .unwrap();
    }
    if cores < 2 {
        writeln!(
            out,
            "  single-CPU host ({cores} core): workers time-slice one core, so the 1.3x \
             bar is waived; the ratio above measures pure protocol + snapshot overhead"
        )
        .unwrap();
    }
    write!(out, "{}", dist.summary()).unwrap();
    writeln!(
        out,
        "claim: context-sharded worker processes beat the threaded width-4 traversal \
         end-to-end (spawn + snapshot + merge included), bit-identically  |  measured: \
         {speedup:.2}x with {workers} workers on {} rows ({cores}-core host)",
        rel.len()
    )
    .unwrap();
    (out, stats)
}

/// Row-at-a-time bucketing for E14's Value baseline: sort `(&Value, row)`
/// pairs with `Value::cmp` and emit runs of equal values as classes —
/// what partition refinement costs without any integer codes at all.  Same
/// output contract as the partition builders: classes in first-member order,
/// members ascending.
fn value_bucket(
    rel: &od_core::Relation,
    attr: AttrId,
    rows: impl Iterator<Item = u32>,
) -> Vec<Vec<u32>> {
    let mut pairs: Vec<(&od_core::Value, u32)> = rows
        .map(|row| (rel.value(row as usize, attr), row))
        .collect();
    pairs.sort_unstable_by(|x, y| x.0.cmp(y.0).then(x.1.cmp(&y.1)));
    let mut classes: Vec<Vec<u32>> = Vec::new();
    let mut start = 0usize;
    for i in 1..=pairs.len() {
        if i == pairs.len() || pairs[i].0.cmp(pairs[start].0) != std::cmp::Ordering::Equal {
            if i - start >= 2 {
                classes.push(pairs[start..i].iter().map(|&(_, row)| row).collect());
            }
            start = i;
        }
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// Comparison-sorted bucketing of `(code, row)` pairs into classes of size
/// ≥ 2 — the pre-refactor rank-code reference E14 times the radix path
/// against.  Same output contract as the partition builders: classes in
/// first-member order, members ascending.
fn comparison_bucket(pairs: impl Iterator<Item = (u32, u32)>) -> Vec<Vec<u32>> {
    let mut pairs: Vec<(u32, u32)> = pairs.collect();
    pairs.sort_unstable();
    let mut classes = Vec::new();
    let mut start = 0usize;
    for i in 1..=pairs.len() {
        if i == pairs.len() || pairs[i].0 != pairs[start].0 {
            if i - start >= 2 {
                classes.push(pairs[start..i].iter().map(|&(_, row)| row).collect());
            }
            start = i;
        }
    }
    classes.sort_by_key(|c: &Vec<u32>| c[0]);
    classes
}

fn rows_per_sec(rows: usize, elapsed: std::time::Duration) -> String {
    format!("{:.0}", rows as f64 / elapsed.as_secs_f64().max(1e-9))
}

/// Run `f` twice and report its result with the smaller elapsed time — the
/// standard guard against cold-start noise (page faults, frequency ramp) in
/// single-shot comparisons.  The result is taken from the second run; E14's
/// paths are deterministic, so both runs return the same value.
fn timed_best_of_2<R>(mut f: impl FnMut() -> R) -> (R, std::time::Duration) {
    let t = Instant::now();
    let _warm = f();
    let first = t.elapsed();
    let t = Instant::now();
    let result = f();
    (result, first.min(t.elapsed()))
}

fn ok(b: bool) -> &'static str {
    if b {
        "holds"
    } else {
        "VIOLATED"
    }
}

fn ok_not(b: bool) -> &'static str {
    if b {
        "UNEXPECTEDLY holds"
    } else {
        "falsified"
    }
}

fn violation(rel: &od_core::Relation, od: &OrderDependency) -> String {
    match check_od(rel, od) {
        Ok(()) => "UNEXPECTEDLY holds".into(),
        Err(v) => format!(
            "falsified by a {}",
            if v.is_swap() { "swap" } else { "split" }
        ),
    }
}

fn schema_list(schema: &od_core::Schema, list: &AttrList) -> String {
    let names: Vec<&str> = list.iter().map(|a| schema.attr_name(a)).collect();
    format!("[{}]", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_reports_contain_no_unexpected_outcomes() {
        let scale = ExperimentScale::tiny();
        for report in [
            exp_e1_figure1(),
            exp_e2_dates(scale),
            exp_e3_example1(scale),
            exp_e5_tax(scale),
            exp_e6_soundness(),
            exp_e7_witness(),
            exp_e8_fd_subsumption(),
            exp_e9_implication(),
            exp_e12_width3(scale),
            exp_e13_width4(scale, 4),
            exp_e14_columnar(5_000),
            exp_e16_lattice(5_000),
        ] {
            assert!(
                !report.contains("UNEXPECTED"),
                "report flagged a problem:\n{report}"
            );
            assert!(!report.is_empty());
        }
    }

    #[test]
    fn tpcds_suite_preserves_results_and_improves_on_average() {
        let (_report, outcomes) = exp_e4_tpcds(ExperimentScale::tiny());
        assert_eq!(outcomes.len(), 18);
        assert!(outcomes.iter().all(|o| o.identical));
        let core: Vec<_> = outcomes.iter().filter(|o| o.core).collect();
        assert_eq!(core.len(), 13);
        let avg = core.iter().map(|o| o.gain_pct).sum::<f64>() / core.len() as f64;
        assert!(
            avg > 0.0,
            "the rewrite must improve the core suite on average, got {avg:.1}%"
        );
    }
}
