//! Per-experiment metrics capture: run an experiment under a scoped
//! [`od_obs::Registry`] and package everything it recorded as a
//! [`MetricsReport`] ready for canonical-JSON emission.
//!
//! The scoped registry is what makes `BENCH_<experiment>.json` artifacts
//! comparable across runs: each capture starts from empty counters, so the
//! deterministic section reflects exactly one experiment's work — never
//! leakage from a previous experiment or another test sharing the process —
//! and diffs clean against any other run of the same experiment.

use od_obs::{MetricsReport, Registry};
use std::sync::Arc;

/// Run `f` with a fresh metrics registry scoped to the calling thread and
/// return its result together with a [`MetricsReport`] of everything it
/// recorded.  Counters, gauges, and histograms land in the report's
/// deterministic section; span durations and peak RSS in the
/// non-deterministic one.
pub fn capture<R>(experiment: &str, f: impl FnOnce() -> R) -> (R, MetricsReport) {
    let registry = Arc::new(Registry::new());
    let result = od_obs::scoped(Arc::clone(&registry), f);
    let report = MetricsReport::from_snapshot(experiment, &registry.snapshot()).with_peak_rss();
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_scopes_counters_to_one_experiment() {
        let (out, first) = capture("one", || {
            od_obs::add("bench.test.counter", 3);
            "done"
        });
        assert_eq!(out, "done");
        assert!(first.canonical_json().contains("\"bench.test.counter\":3"));
        // A second capture starts from empty state.
        let (_, second) = capture("two", || ());
        assert!(!second.canonical_json().contains("bench.test.counter"));
    }
}
