//! E15 — service-layer load: drive a live `od-server` over loopback TCP with
//! a multi-threaded client fleet and measure end-to-end request throughput,
//! latency percentiles, pub/sub flip delivery, and the saturation knee of an
//! iterative max-capacity search.
//!
//! Three phases:
//!
//! 1. **Flip pub/sub (serial, deterministic)** — one subscriber, one driver
//!    toggling a violating row in and out of the monitored table; every
//!    toggle crosses the ε boundary twice, and the harness verifies each
//!    broadcast arrives exactly once.
//! 2. **Spot load (multi-threaded, fixed work)** — a fixed request total is
//!    split across client threads, with the request *kind* assigned by global
//!    index, so request/response/insert counts are a pure function of the
//!    configuration — identical across runs and across thread counts.  The
//!    deltas insert duplicates of existing rows: a duplicate can never
//!    introduce a split or a swap, so verdicts stay pinned while the live
//!    table still takes real writes.
//! 3. **Max-capacity knee (iterative)** — client count doubles per round
//!    against a read-only request mix until throughput stops improving; the
//!    knee is the last round that still helped.  Wall-clock by nature: its
//!    results go to the report text and the *non-deterministic* metrics
//!    section only.
//!
//! The deterministic section of `BENCH_e15.json` therefore holds only
//! phase-1/2 counts (requests by kind, responses, flip broadcasts and
//! deliveries, final row count) and diffs byte-identical across runs and
//! `--threads` settings; throughput, percentiles, and the knee live in the
//! non-deterministic section.

use od_core::{AttrId, OrderDependency, Tuple, Value};
use od_server::proto::{Notification, Request, Response};
use od_server::{Client, OdServer};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Tax schema columns: id, income, bracket, payable.
const INCOME: u32 = 1;
const BRACKET: u32 = 2;
const PAYABLE: u32 = 3;

/// Flip toggles in phase 1 (each is one violating insert + one repairing
/// delete: two boundary crossings).
const TOGGLES: u64 = 16;

/// E15 configuration: table size, fixed request total, and client threads
/// for the spot-load phase.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Rows in the hosted tax relation.
    pub rows: usize,
    /// Total requests issued in the spot-load phase (split across threads).
    pub requests: usize,
    /// Client threads in the spot-load phase.
    pub threads: usize,
    /// Run the iterative max-capacity knee search (phase 3).  Off in the
    /// determinism tests, which only compare deterministic sections.
    pub knee_search: bool,
}

impl LoadConfig {
    /// Quick smoke configuration for CI.
    pub fn tiny() -> Self {
        LoadConfig {
            rows: 2_000,
            requests: 1_200,
            threads: 4,
            knee_search: true,
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rows: 20_000,
            requests: 12_000,
            threads: 4,
            knee_search: true,
        }
    }
}

/// Wall-clock observations of an E15 run — everything here is
/// run-to-run variable and lands only in the non-deterministic section.
pub struct LoadStats {
    /// Spot-phase throughput, requests per second.
    pub throughput_rps: f64,
    /// Spot-phase latency percentiles, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// `(client_count, requests_per_second)` per max-capacity round.
    pub capacity_curve: Vec<(usize, f64)>,
    /// Client count at the saturation knee.
    pub knee_clients: usize,
    /// Throughput at the knee, requests per second.
    pub knee_rps: f64,
}

fn watched_ods() -> Vec<OrderDependency> {
    // Both hold *exactly* on the generated tax data (bracket and payable are
    // monotone in income), so the duplicate-insert load phase keeps every
    // verdict accepted and flip-free by construction.
    vec![
        OrderDependency::new(vec![AttrId(INCOME)], vec![AttrId(BRACKET)]),
        OrderDependency::new(vec![AttrId(INCOME)], vec![AttrId(PAYABLE)]),
    ]
}

/// The spot-phase request for global index `i` — a pure function of the
/// index, so the issued mix does not depend on the thread count.
fn request_for(i: usize, snapshot: &[Tuple]) -> Request {
    match i % 4 {
        0 => Request::ApplyDelta {
            monitor: "ledger".into(),
            inserts: vec![snapshot[(i * 31) % snapshot.len()].clone()],
            deletes: vec![],
        },
        1 => Request::MonitorStatus {
            monitor: "ledger".into(),
        },
        2 => Request::Implies {
            premises: watched_ods(),
            goal: OrderDependency::new(vec![AttrId(INCOME)], vec![AttrId(BRACKET)]),
        },
        _ => Request::Ping,
    }
}

fn check_response(i: usize, response: &Response) {
    match (i % 4, response) {
        (
            0,
            Response::DeltaApplied {
                inserted, flipped, ..
            },
        ) => {
            assert_eq!(inserted.len(), 1);
            assert!(
                flipped.is_empty(),
                "duplicate inserts must never flip a verdict"
            );
        }
        (1, Response::Statuses { statuses, .. }) => assert_eq!(statuses.len(), 2),
        (2, Response::Implication { implied }) => assert!(implied),
        (3, Response::Pong) => {}
        (kind, other) => panic!("request kind {kind} got unexpected response {other:?}"),
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Boot a server hosting the tax relation and the `ledger` monitor; returns
/// the server, its address, and the relation's rows (for duplicate inserts).
fn boot(rows: usize) -> (OdServer, SocketAddr, Vec<Tuple>) {
    let server = OdServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let rel = od_workload::tax::generate_taxes(rows, 42);
    let snapshot: Vec<Tuple> = rel.tuples().to_vec();
    let mut client = Client::connect(addr).expect("connect");
    match client
        .request(&Request::CreateRelation {
            name: "taxes".into(),
            relation: rel,
        })
        .expect("create relation")
    {
        Response::RelationCreated { rows: n } => assert_eq!(n, rows as u64),
        other => panic!("create relation failed: {other:?}"),
    }
    match client
        .request(&Request::CreateMonitor {
            name: "ledger".into(),
            relation: "taxes".into(),
            epsilon: 0.0,
            ods: watched_ods(),
        })
        .expect("create monitor")
    {
        Response::MonitorCreated { watched } => assert_eq!(watched, 2),
        other => panic!("create monitor failed: {other:?}"),
    }
    (server, addr, snapshot)
}

/// Phase 1: serial flip pub/sub.  Returns the total flip statuses broadcast
/// (data-deterministic) after verifying exactly-once delivery.
fn flip_phase(addr: SocketAddr, out: &mut String) -> u64 {
    let mut subscriber = Client::connect(addr).expect("connect subscriber");
    match subscriber
        .request(&Request::Subscribe {
            monitor: "ledger".into(),
        })
        .expect("subscribe")
    {
        Response::Subscribed => {}
        other => panic!("subscribe failed: {other:?}"),
    }
    let mut driver = Client::connect(addr).expect("connect driver");
    for k in 0..TOGGLES as i64 {
        let inserted = match driver
            .request(&Request::ApplyDelta {
                monitor: "ledger".into(),
                inserts: vec![vec![
                    Value::Int(9_000_000 + k),
                    Value::Int(399_000 + k),
                    Value::Int(1), // wrong bracket: violates all three watched ODs
                    Value::Int(0),
                ]],
                deletes: vec![],
            })
            .expect("violating insert")
        {
            Response::DeltaApplied {
                inserted, flipped, ..
            } => {
                assert!(!flipped.is_empty(), "violating insert must flip");
                inserted
            }
            other => panic!("insert failed: {other:?}"),
        };
        match driver
            .request(&Request::ApplyDelta {
                monitor: "ledger".into(),
                inserts: vec![],
                deletes: inserted,
            })
            .expect("repairing delete")
        {
            Response::DeltaApplied { flipped, .. } => {
                assert!(!flipped.is_empty(), "repairing delete must flip back")
            }
            other => panic!("delete failed: {other:?}"),
        }
    }
    // Exactly-once: 2 broadcasts per toggle, contiguous seqs, then silence.
    let mut statuses_total = 0u64;
    for want_seq in 1..=2 * TOGGLES {
        match subscriber
            .recv_notification(Duration::from_secs(10))
            .expect("notification stream")
        {
            Some(Notification::Flips { seq, statuses, .. }) => {
                assert_eq!(
                    seq, want_seq,
                    "flip broadcasts arrive exactly once, in order"
                );
                statuses_total += statuses.len() as u64;
            }
            other => panic!("expected flip #{want_seq}, got {other:?}"),
        }
    }
    assert!(
        subscriber
            .recv_notification(Duration::from_millis(100))
            .expect("quiet stream")
            .is_none(),
        "no duplicate flip notifications"
    );
    od_obs::add("e15.flip.toggles", TOGGLES);
    od_obs::add("e15.flip.broadcasts", 2 * TOGGLES);
    od_obs::add("e15.flip.delivered", 2 * TOGGLES);
    od_obs::add("e15.flip.statuses", statuses_total);
    writeln!(
        out,
        "flip pub/sub: {TOGGLES} toggles -> {} broadcasts, {} flip statuses, all delivered exactly once",
        2 * TOGGLES,
        statuses_total
    )
    .unwrap();
    statuses_total
}

/// Phase 2: fixed-work spot load.  Returns merged per-request latencies (µs)
/// and the wall-clock of the whole phase.
fn spot_phase(
    addr: SocketAddr,
    snapshot: &[Tuple],
    requests: usize,
    threads: usize,
) -> (Vec<u64>, Duration) {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let snapshot = snapshot.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect load client");
                let mut latencies = Vec::new();
                let mut i = t;
                while i < requests {
                    let request = request_for(i, &snapshot);
                    let sent = Instant::now();
                    let response = client.request(&request).expect("load request");
                    latencies.push(sent.elapsed().as_micros() as u64);
                    check_response(i, &response);
                    i += threads;
                }
                latencies
            })
        })
        .collect();
    let mut merged = Vec::with_capacity(requests);
    for handle in handles {
        merged.extend(handle.join().expect("load client thread"));
    }
    let wall = started.elapsed();
    assert_eq!(merged.len(), requests);
    merged.sort_unstable();
    (merged, wall)
}

/// Phase 3: iterative max-capacity search over a read-only mix.  Doubles the
/// client count until throughput stops improving by at least 10%, and
/// reports the knee (the last round that still helped).
fn capacity_phase(addr: SocketAddr, out: &mut String) -> (Vec<(usize, f64)>, usize, f64) {
    const BURST_PER_CLIENT: usize = 300;
    const MAX_CLIENTS: usize = 32;
    let mut curve: Vec<(usize, f64)> = Vec::new();
    let mut clients = 1usize;
    let (mut knee_clients, mut knee_rps) = (1usize, 0.0f64);
    while clients <= MAX_CLIENTS {
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect capacity client");
                    for i in 0..BURST_PER_CLIENT {
                        // Read-only mix: state-neutral, so the knee search
                        // cannot perturb the deterministic final row count.
                        let request = if (t + i) % 2 == 0 {
                            Request::MonitorStatus {
                                monitor: "ledger".into(),
                            }
                        } else {
                            Request::Ping
                        };
                        let response = client.request(&request).expect("capacity request");
                        assert!(matches!(
                            response,
                            Response::Statuses { .. } | Response::Pong
                        ));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("capacity client thread");
        }
        let wall = started.elapsed();
        let rps = (clients * BURST_PER_CLIENT) as f64 / wall.as_secs_f64();
        writeln!(out, "  capacity: {clients:>2} clients -> {rps:>10.0} req/s").unwrap();
        curve.push((clients, rps));
        if rps > knee_rps * 1.10 {
            knee_clients = clients;
            knee_rps = rps;
        } else {
            // Throughput saturated: the previous round was the knee.
            break;
        }
        clients *= 2;
    }
    (curve, knee_clients, knee_rps)
}

/// Run E15 and return both the report text and the raw wall-clock stats —
/// the entry point for the release speed guard, which asserts on the
/// numbers rather than parsing the text.
#[doc(hidden)]
pub fn exp_e15_server_load_with_stats(config: LoadConfig) -> (String, LoadStats) {
    run_e15(config)
}

fn run_e15(config: LoadConfig) -> (String, LoadStats) {
    let LoadConfig {
        rows,
        requests,
        threads,
        knee_search,
    } = config;
    let mut out = String::new();
    writeln!(
        out,
        "## E15  Service-layer load (od-server over loopback TCP)"
    )
    .unwrap();
    writeln!(
        out,
        "hosted tax relation: {rows} rows; monitor 'ledger' watching {} ODs at eps=0",
        watched_ods().len()
    )
    .unwrap();

    let (server, addr, snapshot) = boot(rows);
    od_obs::add("e15.rows", rows as u64);

    flip_phase(addr, &mut out);

    let (latencies, wall) = spot_phase(addr, &snapshot, requests, threads);
    let delta_requests = requests.div_ceil(4); // indices ≡ 0 (mod 4)
    od_obs::add("e15.load.requests", requests as u64);
    od_obs::add("e15.load.responses", requests as u64);
    od_obs::add("e15.load.deltas", delta_requests as u64);
    od_obs::add("e15.load.statuses", ((requests + 2) / 4) as u64);
    od_obs::add("e15.load.implications", ((requests + 1) / 4) as u64);
    od_obs::add("e15.load.pings", (requests / 4) as u64);

    // Final row count: initial snapshot + one duplicate per delta request
    // (phase-1 toggles net to zero).  Read back over the wire and pinned.
    let mut client = Client::connect(addr).expect("connect");
    let final_rows = match client
        .request(&Request::MonitorStatus {
            monitor: "ledger".into(),
        })
        .expect("final status")
    {
        Response::Statuses { rows: n, statuses } => {
            assert!(
                statuses.iter().all(|s| s.accepted),
                "duplicates cannot flip"
            );
            n
        }
        other => panic!("final status failed: {other:?}"),
    };
    assert_eq!(final_rows, (rows + delta_requests) as u64);
    od_obs::add("e15.load.final_rows", final_rows);

    let throughput_rps = requests as f64 / wall.as_secs_f64();
    let (p50_us, p95_us, p99_us) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    writeln!(
        out,
        "spot load: {requests} requests over {threads} clients in {:.3}s -> {throughput_rps:.0} req/s",
        wall.as_secs_f64()
    )
    .unwrap();
    writeln!(
        out,
        "latency: p50 {p50_us} us, p95 {p95_us} us, p99 {p99_us} us"
    )
    .unwrap();

    let (capacity_curve, knee_clients, knee_rps) = if knee_search {
        writeln!(
            out,
            "max-capacity search (read-only mix, doubling clients):"
        )
        .unwrap();
        let (curve, knee_clients, knee_rps) = capacity_phase(addr, &mut out);
        writeln!(
            out,
            "saturation knee: {knee_clients} clients at {knee_rps:.0} req/s"
        )
        .unwrap();
        (curve, knee_clients, knee_rps)
    } else {
        writeln!(out, "max-capacity search: skipped").unwrap();
        (Vec::new(), 0, 0.0)
    };

    server.shutdown();
    (
        out,
        LoadStats {
            throughput_rps,
            p50_us,
            p95_us,
            p99_us,
            capacity_curve,
            knee_clients,
            knee_rps,
        },
    )
}

/// E15 as a plain text report.
pub fn exp_e15_server_load(config: LoadConfig) -> String {
    run_e15(config).0
}

/// [`exp_e15_server_load`] under a scoped metrics registry, for
/// `BENCH_e15.json`.  Flip/request/response counts land in the
/// deterministic section (byte-identical across runs and thread counts);
/// throughput, percentiles, and the capacity curve land in the
/// non-deterministic section.
pub fn exp_e15_server_load_with_metrics(config: LoadConfig) -> (String, od_obs::MetricsReport) {
    let ((out, stats), mut report) = crate::metrics::capture("e15", || run_e15(config));
    report.set_nondeterministic("e15.throughput_rps", stats.throughput_rps);
    report.set_nondeterministic("e15.latency_p50_us", stats.p50_us);
    report.set_nondeterministic("e15.latency_p95_us", stats.p95_us);
    report.set_nondeterministic("e15.latency_p99_us", stats.p99_us);
    report.set_nondeterministic("e15.knee_clients", stats.knee_clients as u64);
    report.set_nondeterministic("e15.knee_rps", stats.knee_rps);
    report.set_nondeterministic(
        "e15.capacity_curve",
        od_obs::Json::Array(
            stats
                .capacity_curve
                .iter()
                .map(|&(clients, rps)| {
                    od_obs::Json::Array(vec![
                        od_obs::Json::from(clients as u64),
                        od_obs::Json::from(rps),
                    ])
                })
                .collect(),
        ),
    );
    (out, report)
}
