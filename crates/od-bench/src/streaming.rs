//! Shared fixtures for the E11 streaming measurements, used by both the
//! `stream_monitor` bench and the `stream_speed` release guard so the
//! quantity the bench reports is exactly the quantity the guard asserts on.

use od_core::{Relation, Tuple};
use od_discovery::Discovery;
use od_setbased::stream::DeltaBatch;
use od_setbased::{translate_od, validate, PartitionCache, SetOd};

/// The distinct canonical statements behind a discovery run's OD set (the
/// statement set a monitor maintains and a full re-validation must scan).
pub fn monitored_statements(discovery: &Discovery) -> Vec<SetOd> {
    let mut all: Vec<_> = discovery.ods.iter().flat_map(translate_od).collect();
    all.sort();
    all.dedup();
    all
}

/// A churn batch: delete the `delta_rows` oldest alive tuples and insert
/// fresh rows drawn from a disjoint pool.  Round `r` deletes ids
/// `[r·Δ, r·Δ + Δ)` and inserts Δ fresh ids, so the alive window slides
/// monotonically — those deletes are always alive, for any number of rounds
/// (tuple ids are never reused, so a wrapping modulo would hit dead ids).
pub fn churn_batch(round: usize, delta_rows: usize, fresh: &[Tuple]) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for i in 0..delta_rows {
        batch = batch.delete((round * delta_rows + i) as u32);
    }
    for i in 0..delta_rows {
        batch = batch.insert(fresh[(round * delta_rows + i) % fresh.len()].clone());
    }
    batch
}

/// The full-re-validation baseline: exact statement verdicts (worst removal
/// count) from a fresh partition cache over a snapshot of the live rows —
/// what every delta used to cost before delta maintenance.
pub fn full_revalidation(snapshot: &Relation, stmts: &[SetOd]) -> usize {
    let mut cache = PartitionCache::new(snapshot);
    stmts
        .iter()
        .map(|stmt| validate::statement_verdict(&mut cache, stmt, 1, usize::MAX).removal_count)
        .max()
        .unwrap_or(0)
}
