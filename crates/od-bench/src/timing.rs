//! Shared wall-clock measurement helpers for the speed guards and the E4
//! suite — one implementation of the best-of-N loop instead of a hand-rolled
//! copy per test file.  Built on [`od_obs::timed`], so every guard
//! measurement also lands in the ambient metrics registry as a span duration
//! (non-deterministic section of a [`od_obs::MetricsReport`]).

use std::time::Duration;

/// Run `f` `passes` times (at least once), recording each pass under the
/// od-obs span `label`.  Returns the final pass's result together with the
/// best (minimum) wall-clock duration — the quantity the speed guards assert
/// on, so a single scheduler stall on a noisy CI runner cannot invert a
/// margin.
pub fn best_of_with<R>(passes: usize, label: &str, mut f: impl FnMut() -> R) -> (R, Duration) {
    let (mut result, mut best) = od_obs::timed(label, &mut f);
    for _ in 1..passes {
        let (r, t) = od_obs::timed(label, &mut f);
        result = r;
        best = best.min(t);
    }
    (result, best)
}

/// [`best_of_with`] discarding the result — the shape of the speed guards'
/// timing loops, where the work's output is checked separately.
pub fn best_of(passes: usize, label: &str, mut f: impl FnMut()) -> Duration {
    best_of_with(passes, label, &mut f).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_keeps_the_minimum_and_runs_every_pass() {
        let mut runs = 0usize;
        let best = best_of(3, "bench.test.best_of", || {
            runs += 1;
            std::thread::sleep(Duration::from_micros(50));
        });
        assert_eq!(runs, 3);
        assert!(best >= Duration::from_micros(50));
    }

    #[test]
    fn best_of_with_returns_the_last_result() {
        let mut n = 0u32;
        let (last, _) = best_of_with(4, "bench.test.best_of_with", || {
            n += 1;
            n
        });
        assert_eq!(last, 4);
    }

    #[test]
    fn zero_passes_still_runs_once() {
        let mut runs = 0usize;
        best_of(0, "bench.test.zero", || runs += 1);
        assert_eq!(runs, 1);
    }
}
