//! `reproduce` — regenerate every figure and quantitative claim of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p od-bench --bin reproduce                    # all experiments
//! cargo run --release -p od-bench --bin reproduce -- e4              # a single experiment (e1..e9, e12, e13)
//! cargo run --release -p od-bench --bin reproduce -- --tiny          # small data sizes (quick smoke run)
//! cargo run --release -p od-bench --bin reproduce -- e13 --max-context 5
//! #                       deepest lattice level for E13 (default 4)
//! cargo run --release -p od-bench --bin reproduce -- e12 e13 --metrics-out out/
//! #                       also write BENCH_<exp>.json canonical-metrics artifacts
//! cargo run --release -p od-bench --bin reproduce -- e14 --rows 250000
//! #                       rows for the E14 columnar-scale table (default 1M; --tiny 20k)
//! cargo run --release -p od-bench --bin reproduce -- e15 --metrics-out out/
//! #                       service-layer load over loopback TCP (throughput, latency
//! #                       percentiles, pub/sub flips, max-capacity saturation knee)
//! cargo run --release -p od-bench --bin reproduce -- e16 --rows 1000000
//! #                       partition products (hash vs comparison vs radix CSR) and
//! #                       width-2/3/4 discovery on the scale table (--rows as in e14)
//! cargo run --release -p od-bench --bin reproduce -- e17 --workers 2
//! #                       multi-process width-4 discovery: N worker processes
//! #                       (this binary re-exec'd with --od-worker) shard the data
//! #                       plane over pipes, bit-identical to the threaded engine
//! ```

use od_bench::*;

fn main() {
    // Worker-mode hook for E17's self-exec'd workers: with `--od-worker`
    // among the arguments this process serves lattice frames on
    // stdin/stdout and exits — it never reaches the harness below.
    od_setbased::maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let scale = if tiny {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default()
    };
    // `--max-context N` passes the lattice depth through to E13.  A missing
    // or non-numeric value is a hard error rather than a silently swallowed
    // experiment id.
    let flag_pos = args.iter().position(|a| a == "--max-context");
    let max_context = match flag_pos {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(depth)) => depth,
            _ => {
                eprintln!("--max-context requires a numeric value, e.g. --max-context 4");
                std::process::exit(2);
            }
        },
        None => 4,
    };
    // `--metrics-out DIR` captures E12/E13 under a scoped registry and writes
    // `BENCH_<experiment>.json` (full) plus `.deterministic.json` (the
    // run-comparable section) into DIR, creating it if needed.
    let metrics_pos = args.iter().position(|a| a == "--metrics-out");
    let metrics_out: Option<std::path::PathBuf> = match metrics_pos {
        Some(i) => match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => Some(dir.into()),
            _ => {
                eprintln!("--metrics-out requires a directory, e.g. --metrics-out out/");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // `--rows N` sizes the E14/E16 scale table (default 1M full, 20k tiny).
    let rows_pos = args.iter().position(|a| a == "--rows");
    let scale_rows = match rows_pos {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(rows)) => rows,
            _ => {
                eprintln!("--rows requires a numeric value, e.g. --rows 250000");
                std::process::exit(2);
            }
        },
        None if tiny => 20_000,
        None => 1_000_000,
    };
    // `--workers N` sizes the E17 worker pool (default 2 — the smallest
    // count that demonstrates cross-process sharding).
    let workers_pos = args.iter().position(|a| a == "--workers");
    let workers = match workers_pos {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("--workers requires a count of at least 1, e.g. --workers 2");
                std::process::exit(2);
            }
        },
        None => 2,
    };
    let value_positions: Vec<usize> = [flag_pos, metrics_pos, rows_pos, workers_pos]
        .iter()
        .flatten()
        .map(|i| i + 1)
        .collect();
    let selected: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            Some(i) != flag_pos
                && Some(i) != metrics_pos
                && !value_positions.contains(&i)
                && !a.starts_with("--")
        })
        .map(|(_, a)| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("Reproduction harness — 'Fundamentals of Order Dependencies' (VLDB 2012)");
    println!("scale: {scale:?}\n");

    if want("e1") {
        println!("{}", exp_e1_figure1());
    }
    if want("e2") {
        println!("{}", exp_e2_dates(scale));
    }
    if want("e3") {
        println!("{}", exp_e3_example1(scale));
    }
    if want("e4") {
        let (report, _) = exp_e4_tpcds(scale);
        println!("{report}");
    }
    if want("e5") {
        println!("{}", exp_e5_tax(scale));
    }
    if want("e6") {
        println!("{}", exp_e6_soundness());
    }
    if want("e7") {
        println!("{}", exp_e7_witness());
    }
    if want("e8") {
        println!("{}", exp_e8_fd_subsumption());
    }
    if want("e9") {
        println!("{}", exp_e9_implication());
    }
    if want("e12") {
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e12_width3_with_metrics(scale);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e12_width3(scale)),
        }
    }
    if want("e13") {
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e13_width4_with_metrics(scale, max_context);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e13_width4(scale, max_context)),
        }
    }
    if want("e14") {
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e14_columnar_with_metrics(scale_rows);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e14_columnar(scale_rows)),
        }
    }
    if want("e15") {
        let config = if tiny {
            LoadConfig::tiny()
        } else {
            LoadConfig::default()
        };
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e15_server_load_with_metrics(config);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e15_server_load(config)),
        }
    }
    if want("e16") {
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e16_lattice_with_metrics(scale_rows);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e16_lattice(scale_rows)),
        }
    }
    if want("e17") {
        match &metrics_out {
            Some(dir) => {
                let (report, metrics) = exp_e17_dist_with_metrics(scale_rows, workers);
                println!("{report}");
                emit(&metrics, dir);
            }
            None => println!("{}", exp_e17_dist(scale_rows, workers)),
        }
    }
}

/// Write one experiment's metrics artifacts, failing loudly: a bench-smoke CI
/// run that silently skips its artifacts would defeat the diff step.
fn emit(metrics: &od_obs::MetricsReport, dir: &std::path::Path) {
    match metrics.write_to(dir) {
        Ok((full, deterministic)) => {
            println!(
                "metrics: {} + {}\n",
                full.display(),
                deterministic.display()
            );
        }
        Err(err) => {
            eprintln!("failed to write metrics into {}: {err}", dir.display());
            std::process::exit(1);
        }
    }
}
