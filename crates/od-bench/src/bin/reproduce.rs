//! `reproduce` — regenerate every figure and quantitative claim of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p od-bench --bin reproduce            # all experiments
//! cargo run --release -p od-bench --bin reproduce -- e4      # a single experiment (e1..e9, e12)
//! cargo run --release -p od-bench --bin reproduce -- --tiny  # small data sizes (quick smoke run)
//! ```

use od_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let scale = if tiny {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default()
    };
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("Reproduction harness — 'Fundamentals of Order Dependencies' (VLDB 2012)");
    println!("scale: {scale:?}\n");

    if want("e1") {
        println!("{}", exp_e1_figure1());
    }
    if want("e2") {
        println!("{}", exp_e2_dates(scale));
    }
    if want("e3") {
        println!("{}", exp_e3_example1(scale));
    }
    if want("e4") {
        let (report, _) = exp_e4_tpcds(scale);
        println!("{report}");
    }
    if want("e5") {
        println!("{}", exp_e5_tax(scale));
    }
    if want("e6") {
        println!("{}", exp_e6_soundness());
    }
    if want("e7") {
        println!("{}", exp_e7_witness());
    }
    if want("e8") {
        println!("{}", exp_e8_fd_subsumption());
    }
    if want("e9") {
        println!("{}", exp_e9_implication());
    }
    if want("e12") {
        println!("{}", exp_e12_width3(scale));
    }
}
