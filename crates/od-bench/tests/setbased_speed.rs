//! The performance half of the od-setbased acceptance criteria: on a
//! ≥10k-row workload, width-2 set-based discovery must beat the naive
//! sort-per-candidate engine in wall-clock time (the margin is ~15× in release
//! builds, so asserting a plain win is safe even under CI noise).

use od_bench::timing::best_of;
use od_discovery::{discover_ods, discover_ods_naive, DiscoveryConfig};
use od_workload::tax;

#[test]
fn set_based_discovery_beats_naive_on_ten_thousand_rows() {
    let rel = tax::generate_taxes(10_000, 7);
    let config = DiscoveryConfig::default();

    // Warm both paths once so allocator effects do not skew the comparison.
    let set_based = discover_ods(&rel, config);
    let naive = discover_ods_naive(&rel, config);
    assert_eq!(set_based.ods, naive.ods);

    // Best of three per engine: a single scheduler stall on a noisy CI
    // runner must not invert a ~15× margin.
    let set_based_time = best_of(3, "bench.setbased.discover", || {
        discover_ods(&rel, config);
    });
    let naive_time = best_of(3, "bench.setbased.naive", || {
        discover_ods_naive(&rel, config);
    });
    assert!(
        set_based_time < naive_time,
        "set-based ({set_based_time:?}) must beat naive ({naive_time:?}) on {} rows",
        rel.len(),
    );
    assert!(
        set_based.statement_validations < naive.validated,
        "statement scans ({}) must undercut full-candidate validations ({})",
        set_based.statement_validations,
        naive.validated,
    );
}
