//! E12 acceptance guard for the node-based lattice engine.
//!
//! Three criteria from the width-3 tentpole:
//!
//! 1. **Interactive width 3** — a release-profile width-3 traversal of the
//!    10k-row taxes and date-dimension workloads finishes well inside
//!    interactive time, with node deletion and candidate propagation doing the
//!    pruning (the wall-clock assertion is release-only; the semantic
//!    assertions run in every profile and ride tier-1 too).
//! 2. **Width-2 equivalence** — the node-based traversal's verdict for every
//!    statement within the old width-2 bound is bit-for-bit the demand-driven
//!    engine's verdict, at ε = 0 and ε = 0.02 (the engine validates each
//!    statement with the same serial scan the old traversal used, so this
//!    pins the refactor against the pre-node-store semantics).
//! 3. **Propagation beats generate-then-check** — at width 3 the number of
//!    validated candidates stays a small fraction of the candidate slots the
//!    propagation resolved without enumeration.

use od_bench::timing::best_of_with;
use od_core::{AttrId, AttrSet, Relation};
use od_setbased::{discover_statements, LatticeConfig, SetBasedEngine, SetOd};
use od_workload::{generate_date_dim, tax};

/// Every non-trivial canonical statement over the relation's attributes with a
/// context of at most `max_context` attributes.
fn statements_within(rel: &Relation, max_context: usize) -> Vec<SetOd> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut contexts: Vec<AttrSet> = vec![AttrSet::new()];
    for _ in 0..max_context {
        let mut next = Vec::new();
        for ctx in &contexts {
            for &a in &universe {
                if !ctx.contains(a) {
                    let mut bigger = *ctx;
                    bigger.insert(a);
                    next.push(bigger);
                }
            }
        }
        contexts.extend(next);
        contexts.sort();
        contexts.dedup();
    }
    let mut out = Vec::new();
    for ctx in &contexts {
        for &a in &universe {
            let c = SetOd::constancy(*ctx, a);
            if !c.is_trivial() {
                out.push(c);
            }
            for &b in &universe {
                if b > a {
                    let k = SetOd::compatibility(*ctx, a, b);
                    if !k.is_trivial() {
                        out.push(k);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn width3_traversal_is_interactive_with_node_deletion_and_propagation() {
    for rel in [
        tax::generate_taxes(10_000, 7),
        generate_date_dim(1998, 10_000, 2_450_000),
    ] {
        let (d, elapsed) = best_of_with(1, "bench.width3.traversal", || {
            discover_statements(
                &rel,
                &LatticeConfig {
                    max_context: 3,
                    ..Default::default()
                },
            )
        });
        // Release-only wall-clock bound: measured ~6 ms (taxes) and ~55 ms
        // (date_dim) on this container, so 2 s absorbs heavy CI noise while
        // still falsifying any return to generate-then-check scaling.
        #[cfg(not(debug_assertions))]
        assert!(
            elapsed.as_secs_f64() < 2.0,
            "width-3 traversal took {elapsed:?} on {} rows",
            rel.len()
        );
        let _ = elapsed;
        assert_eq!(d.max_context(), 3);
        assert!(
            d.stats.nodes_deleted > 0,
            "superkey contexts must delete their nodes: {:?}",
            d.stats
        );
        assert!(d.stats.propagated_away > 0, "{:?}", d.stats);
        assert_eq!(d.level_stats().len(), 4, "levels 0..=3 must all report");
        // At the new deepest level, propagation must resolve more candidate
        // slots than the scans do — that is what makes width 3 affordable.
        let deepest = d.level_stats().last().unwrap();
        assert!(
            deepest.propagated_away > deepest.validated,
            "level 3 must be propagation-dominated: {deepest:?}"
        );
        assert!(d.stats.peak_cached_partitions >= 1);
    }
}

#[test]
fn width2_verdicts_match_the_demand_driven_engine_bit_for_bit() {
    let rel = tax::generate_taxes(10_000, 7);
    for epsilon in [0.0, 0.02] {
        let d = discover_statements(
            &rel,
            &LatticeConfig {
                max_context: 2,
                epsilon,
                ..Default::default()
            },
        );
        let mut engine = SetBasedEngine::with_budget(&rel, 1, d.budget());
        for stmt in statements_within(&rel, 2) {
            assert_eq!(
                d.holds(&stmt),
                engine.statement_holds(&stmt),
                "ε = {epsilon}: node-based and demand-driven engines disagree on {stmt}"
            );
        }
        // Minimal verdicts are the scan verdicts themselves: identical
        // removal counts, witnesses and class counts.
        let mut fresh = SetBasedEngine::with_budget(&rel, 1, d.budget());
        for (stmt, verdict) in d.minimal_statements().iter().zip(d.verdicts()) {
            assert_eq!(
                &fresh.statement_verdict(stmt),
                verdict,
                "ε = {epsilon}: verdict drift on {stmt}"
            );
        }
    }
}
