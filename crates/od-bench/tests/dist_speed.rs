//! CI guard for the E17 distributed traversal: the report must be free of
//! `UNEXPECTED` markers (bit-identity with the threaded engine, and — on
//! hosts with ≥2 CPUs — the ≥1.3x wall-clock bar at scale), with real
//! `reproduce`-binary worker processes wherever a process can be spawned.
//!
//! Wall-clock bounds follow the `lattice_scale` idiom: asserted only in
//! release builds, while the semantic checks run in every profile at a
//! debug-affordable row count.  In-process workers cover the protocol from
//! inside the test binary (which cannot self-exec into worker mode — libtest
//! owns its `main`); the `reproduce` binary provides the real child
//! processes via `CARGO_BIN_EXE_reproduce`.

use od_bench::exp_e17_dist_with_metrics_launcher;
use od_setbased::{dist::WORKER_FLAG, WorkerLauncher};
use std::time::Instant;

/// Rows for the release-profile guard — the headline E17 scale.
const RELEASE_ROWS: usize = 1_000_000;

/// Rows for the always-on semantic pass: enough for real partitions and
/// every frame type, small enough for a debug binary.
const SEMANTIC_ROWS: usize = 20_000;

/// Real worker processes: the `reproduce` binary re-entered through its
/// hidden worker flag, exactly like a user-run `reproduce -- e17`.
fn process_launcher() -> WorkerLauncher {
    WorkerLauncher::command(env!("CARGO_BIN_EXE_reproduce"), [WORKER_FLAG.to_string()])
}

#[test]
fn e17_report_is_clean_at_semantic_scale_in_process() {
    let (report, _) =
        exp_e17_dist_with_metrics_launcher(SEMANTIC_ROWS, 2, &WorkerLauncher::in_process());
    assert!(
        !report.contains("UNEXPECTED"),
        "E17 failed its internal checks at {SEMANTIC_ROWS} rows (in-process):\n{report}"
    );
    assert!(report.contains("bit-identical across engines: holds"));
}

#[test]
fn e17_report_is_clean_at_semantic_scale_with_real_processes() {
    let (report, _) = exp_e17_dist_with_metrics_launcher(SEMANTIC_ROWS, 2, &process_launcher());
    assert!(
        !report.contains("UNEXPECTED"),
        "E17 failed its internal checks at {SEMANTIC_ROWS} rows (processes):\n{report}"
    );
    assert!(report.contains("bit-identical across engines: holds"));
}

#[cfg(not(debug_assertions))]
#[test]
fn e17_clears_its_bars_at_full_scale() {
    let start = Instant::now();
    let (report, _) = exp_e17_dist_with_metrics_launcher(RELEASE_ROWS, 2, &process_launcher());
    let elapsed = start.elapsed();
    // At >= 250k rows run_e17 enforces bit-identity always and the 1.3x
    // wall-clock bar whenever the host has >= 2 CPUs (on a single core the
    // workers time-slice and the bar is waived inside the report).
    assert!(
        !report.contains("UNEXPECTED"),
        "E17 failed an acceptance bar at {RELEASE_ROWS} rows:\n{report}"
    );
    // Generous end-to-end budget: both engines run best-of-2 (~4 traversals
    // of the million-row table plus two worker-pool startups) — steady state
    // is well under 30s; 180s tolerates loaded single-core CI machines.
    assert!(
        elapsed.as_secs_f64() < 180.0,
        "E17 at {RELEASE_ROWS} rows took {elapsed:?} (budget 180s):\n{report}"
    );
}

#[cfg(debug_assertions)]
#[test]
fn e17_speed_bar_skipped_in_debug_profile() {
    // Placeholder so `cargo test` output shows the guard exists in debug
    // builds; the wall-clock assertions only make sense in release.
    let _ = (RELEASE_ROWS, Instant::now());
}
