//! CI guard for the E16 deep-lattice products: the three product paths
//! (per-class hash grouping, comparison-sorted packed keys, radix-sorted
//! packed keys) must produce identical CSR partitions, the radix path must
//! clear its 3x bar against hash grouping at scale, and width-4 discovery
//! must complete at the full million rows inside a wall-clock budget.
//! `run_e16` stamps any violation with an `UNEXPECTED` line, so the semantic
//! assertion here is a single marker check on the report text.
//!
//! Wall-clock bounds follow the `width4_speed` / `columnar_speed` idiom:
//! asserted only in release builds (debug timings measure the compiler, not
//! the algorithm), while the semantic checks run in every profile at a
//! debug-affordable row count.

use od_bench::{exp_e16_lattice, exp_e16_lattice_with_metrics};
use std::time::Instant;

/// Rows for the release-profile guard — the headline E16 scale, where the
/// width-4 lattice runs entirely on memoized radix products.
const RELEASE_ROWS: usize = 1_000_000;

/// Rows for the always-on semantic pass: large enough that the products
/// clear the radix threshold (`RADIX_MIN_PAIRS`), small enough for a debug
/// binary to finish width-4 discovery.
const SEMANTIC_ROWS: usize = 20_000;

#[test]
fn e16_report_is_clean_at_semantic_scale() {
    let report = exp_e16_lattice(SEMANTIC_ROWS);
    assert!(
        !report.contains("UNEXPECTED"),
        "E16 failed its internal checks at {SEMANTIC_ROWS} rows:\n{report}"
    );
    assert!(report.contains("identical CSR partitions on all three paths"));
    assert!(report.contains("width-4 discovery"));
}

#[cfg(not(debug_assertions))]
#[test]
fn e16_clears_speed_bar_at_full_scale() {
    let start = Instant::now();
    let report = exp_e16_lattice(RELEASE_ROWS);
    let elapsed = start.elapsed();
    // At >= 250k rows run_e16 enforces the 3x radix-vs-hash bar itself; a
    // miss (or a partition mismatch across the three paths) shows up as an
    // UNEXPECTED line.
    assert!(
        !report.contains("UNEXPECTED"),
        "E16 failed an acceptance bar at {RELEASE_ROWS} rows:\n{report}"
    );
    // Generous end-to-end budget: the steady-state run is ~15s in release
    // (three timed product paths, each best-of-2, plus width-2/3/4 discovery
    // at ~2.5s each); 120s leaves an order of magnitude for loaded CI
    // machines while still catching a return to per-class hash products.
    assert!(
        elapsed.as_secs_f64() < 120.0,
        "E16 at {RELEASE_ROWS} rows took {elapsed:?} (budget 120s):\n{report}"
    );
}

#[cfg(debug_assertions)]
#[test]
fn e16_speed_bar_skipped_in_debug_profile() {
    // Placeholder so `cargo test` output shows the guard exists in debug
    // builds; the wall-clock and 3x assertions only make sense in release.
    let _ = (RELEASE_ROWS, Instant::now());
}

#[test]
fn e16_deterministic_section_is_stable_across_consecutive_runs() {
    // The bench-smoke diff step reruns the release binary and compares
    // `BENCH_e16.deterministic.json` byte-for-byte; this is the in-process
    // version of that check (thread-count invariance is covered separately
    // in metrics_determinism.rs).
    let rows = if cfg!(debug_assertions) {
        5_000
    } else {
        60_000
    };
    let (_, first) = exp_e16_lattice_with_metrics(rows);
    let (_, second) = exp_e16_lattice_with_metrics(rows);
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "E16 deterministic metrics drifted between consecutive runs"
    );
    assert!(first.deterministic_json().contains("e16.rows"));
    assert!(first
        .deterministic_json()
        .contains("discovery.product_radix_passes"));
}
