//! CI guard for the E14 columnar core: at bench-smoke scale (250k rows in
//! release) the experiment must clear its own acceptance bars — the three
//! refinement paths (row-at-a-time Values, comparison-sorted rank codes,
//! columnar radix codes) produce identical partitions, and the columnar path
//! beats the Value-comparison baseline by at least 3x.  `run_e14` stamps any
//! violation with an `UNEXPECTED` line, so the semantic assertion here is a
//! single marker check on the report text.
//!
//! Wall-clock bounds follow the `width4_speed` idiom: asserted only in
//! release builds (debug timings measure the compiler, not the algorithm),
//! while the semantic checks run in every profile at a debug-affordable row
//! count.

use od_bench::{exp_e14_columnar, exp_e14_columnar_with_metrics};
use std::time::Instant;

/// Rows for the release-profile guard — the smallest scale at which
/// `run_e14` turns the 3x speedup claim into a hard `UNEXPECTED` marker.
const RELEASE_ROWS: usize = 250_000;

/// Rows for the always-on semantic pass: large enough that every partition
/// class clears the radix thresholds (`RADIX_MIN_PAIRS`, `CLASS_RADIX_MIN`),
/// small enough for a debug binary.
const SEMANTIC_ROWS: usize = 20_000;

#[test]
fn e14_report_is_clean_at_semantic_scale() {
    let report = exp_e14_columnar(SEMANTIC_ROWS);
    assert!(
        !report.contains("UNEXPECTED"),
        "E14 failed its internal checks at {SEMANTIC_ROWS} rows:\n{report}"
    );
    assert!(report.contains("identical partitions on all three paths"));
    assert!(report.contains("width-2 discovery"));
}

#[cfg(not(debug_assertions))]
#[test]
fn e14_clears_speed_bar_at_bench_smoke_scale() {
    let start = Instant::now();
    let report = exp_e14_columnar(RELEASE_ROWS);
    let elapsed = start.elapsed();
    // At >= 250k rows run_e14 enforces the 3x columnar-vs-Value bar itself;
    // a miss (or a partition mismatch) shows up as an UNEXPECTED line.
    assert!(
        !report.contains("UNEXPECTED"),
        "E14 failed an acceptance bar at {RELEASE_ROWS} rows:\n{report}"
    );
    // Generous end-to-end budget: the steady-state run is ~3s in release
    // (three timed paths, each best-of-2, plus width-2 discovery); 30s leaves
    // an order of magnitude for loaded CI machines while still catching an
    // accidental return to quadratic bucketing.
    assert!(
        elapsed.as_secs_f64() < 30.0,
        "E14 at {RELEASE_ROWS} rows took {elapsed:?} (budget 30s):\n{report}"
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn scale_10m_generator_sustains_throughput_sampled() {
    use od_setbased::{RefineScratch, StrippedPartition};
    use od_workload::{scale_ods, scale_relation_sampled, SCALE_10M};

    // Walk the full 10M-row RNG stream but materialize every 16th tuple
    // (625k rows): the generation path is exercised at its headline scale
    // without CI holding ten million tuples, and the kept rows are
    // bit-identical to their counterparts in the full table.
    let start = Instant::now();
    let rel = scale_relation_sampled(&SCALE_10M, 16);
    let elapsed = start.elapsed();
    assert_eq!(rel.len(), SCALE_10M.rows / 16);
    // The constructed ODs hold row-wise, so they survive sampling.
    for od in scale_ods(rel.schema()) {
        assert!(od_core::check::od_holds(&rel, &od), "{od} must hold");
    }
    // The sampled table still refines like the full one: the ts column is a
    // key (strips to nothing) and zipf_key × zipf_band is a real product.
    let enc = rel.encoding();
    let mut scratch = RefineScratch::default();
    let ts = StrippedPartition::by_codes_with(enc.codes(0), &mut scratch);
    assert!(ts.is_key(), "sampled ts must stay strictly increasing");
    let zipf = StrippedPartition::by_codes_with(enc.codes(2), &mut scratch);
    let refined = zipf.product_with(&zipf.class_codes(), &mut scratch);
    assert_eq!(refined, zipf, "self-product must be idempotent");
    // Generation + encode of the full stream is ~8s in release; 60s leaves
    // room for loaded CI machines while catching a super-linear regression
    // in the generator or encoder.
    assert!(
        elapsed.as_secs_f64() < 60.0,
        "sampled 10M generation took {elapsed:?} (budget 60s)"
    );
}

#[cfg(debug_assertions)]
#[test]
fn e14_speed_bar_skipped_in_debug_profile() {
    // Placeholder so `cargo test` output shows the guard exists in debug
    // builds; the wall-clock and 3x assertions only make sense in release.
    let _ = (RELEASE_ROWS, Instant::now());
}

#[test]
fn e14_deterministic_section_is_stable_across_consecutive_runs() {
    // The bench-smoke diff step reruns the release binary and compares
    // `BENCH_e14.deterministic.json` byte-for-byte; this is the in-process
    // version of that check (thread-count invariance is covered separately
    // in metrics_determinism.rs).
    let rows = if cfg!(debug_assertions) {
        5_000
    } else {
        60_000
    };
    let (_, first) = exp_e14_columnar_with_metrics(rows);
    let (_, second) = exp_e14_columnar_with_metrics(rows);
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "E14 deterministic metrics drifted between consecutive runs"
    );
    assert!(first.deterministic_json().contains("e14.rows"));
}
