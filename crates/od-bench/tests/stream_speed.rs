//! The performance half of the streaming acceptance criteria: on a 10k-row
//! table under 1%-sized deltas, delta maintenance must beat full
//! re-validation by at least 4×.  The floor was 5× until the columnar core
//! landed: radix-bucketed refinement made the full-revalidation *baseline*
//! ~20% cheaper (the steady-state margin is now ~5×, measured from ~6.4×
//! before), so the guard keeps one turn of headroom under CI noise against
//! the faster denominator.  Runs in CI under the release profile alongside
//! `setbased_speed.rs`; the churn batches, statement set, and baseline are
//! shared with the E11 bench via [`od_bench::streaming`].

use od_bench::streaming::{churn_batch, full_revalidation, monitored_statements};
use od_bench::timing::best_of;
use od_discovery::{discover_ods, DiscoveryConfig, Monitor};
use od_setbased::stream::DeltaBatch;
use od_workload::generate_date_dim;

const BASE_ROWS: usize = 10_000;
const DELTA_ROWS: usize = 100; // 1% of the base table
const ROUNDS: usize = 10;

#[test]
fn delta_maintenance_beats_full_revalidation_five_fold() {
    let rel = generate_date_dim(1998, BASE_ROWS, 2_450_000);
    let fresh = generate_date_dim(2030, BASE_ROWS, 9_450_000);
    let discovery = discover_ods(&rel, DiscoveryConfig::default());
    assert!(
        !discovery.ods.is_empty(),
        "date_dim must yield ODs to watch"
    );
    let stmts = monitored_statements(&discovery);

    let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
    // One warm-up batch (first-touch class states, allocator) plus three
    // distinct passes of ROUNDS batches each; best-of-three per path so a
    // single scheduler stall on a noisy CI runner cannot invert the margin.
    const PASSES: usize = 3;
    let batches: Vec<DeltaBatch> = (0..=PASSES * ROUNDS)
        .map(|round| churn_batch(round, DELTA_ROWS, fresh.tuples()))
        .collect();
    monitor.apply(&batches[0]).expect("warm-up batch");

    // Streaming path: apply every delta, reading fresh verdicts each time.
    // Each pass must consume its own slice of batches (the table evolves),
    // so the pass index advances outside the timed closure.
    let mut pass = 0;
    let monitor_time = best_of(PASSES, "bench.stream.monitor", || {
        for batch in &batches[1 + pass * ROUNDS..1 + (pass + 1) * ROUNDS] {
            monitor.apply(batch).expect("valid churn batch");
        }
        pass += 1;
    });

    // Full path: what every delta used to cost — snapshot the live rows
    // (each delta changes the table, so every re-validation starts from a
    // fresh copy) and re-validate every monitored statement with a fresh
    // partition scan.
    let mut full_worst = 0usize;
    let full_time = best_of(PASSES, "bench.stream.full_revalidation", || {
        for _ in 0..ROUNDS {
            let snapshot = monitor.stream().to_relation();
            full_worst = full_revalidation(&snapshot, &stmts);
        }
    });

    // Correctness first: the ledgers agree with the from-scratch scan.
    let ledger_worst = discovery
        .ods
        .iter()
        .zip(&discovery.errors)
        .filter(|(_, &err)| err == 0.0)
        .map(|(od, _)| monitor.stream().od_removal(od).expect("watched"))
        .max()
        .unwrap_or(0);
    assert_eq!(
        ledger_worst, full_worst,
        "delta-maintained verdicts must match full recomputation"
    );

    eprintln!(
        "stream guard: {ROUNDS} deltas in {monitor_time:?} vs {ROUNDS} full \
         re-validations in {full_time:?} ({:.1}×)",
        full_time.as_secs_f64() / monitor_time.as_secs_f64()
    );
    assert!(
        monitor_time * 4 <= full_time,
        "monitoring {ROUNDS} deltas ({monitor_time:?}) must be ≥4× cheaper than \
         {ROUNDS} full re-validations ({full_time:?}) on {BASE_ROWS} rows"
    );
}
