//! CI guard for the E15 service layer: the loopback TCP spot-load phase must
//! sustain a conservative throughput floor and keep tail latency bounded.
//! The floors sit roughly 20x under the measured steady state (~40k req/s,
//! p99 well under 1 ms on loopback), so they catch an accidental return to
//! per-request connection setup or a lock held across the socket write — not
//! scheduler jitter on a loaded CI machine.
//!
//! Wall-clock bounds follow the `columnar_speed` idiom: asserted only in
//! release builds (debug timings measure the compiler, not the server), while
//! the semantic report checks run in every profile at a debug-affordable
//! request count.

use od_bench::server_load::exp_e15_server_load_with_stats;
use od_bench::LoadConfig;

fn guard_config() -> LoadConfig {
    // Debug builds shrink the workload ~4x and skip the wall-clock bars; the
    // knee search stays off in both profiles — saturation probing is an
    // experiment concern, not a regression guard.
    if cfg!(debug_assertions) {
        LoadConfig {
            rows: 1_000,
            requests: 600,
            threads: 4,
            knee_search: false,
        }
    } else {
        LoadConfig {
            rows: 5_000,
            requests: 2_400,
            threads: 4,
            knee_search: false,
        }
    }
}

#[test]
fn e15_report_is_clean_at_guard_scale() {
    let config = guard_config();
    let (report, stats) = exp_e15_server_load_with_stats(config);
    assert!(
        report.contains("all delivered exactly once"),
        "E15 pub/sub phase lost or duplicated a flip:\n{report}"
    );
    assert!(
        report.contains("max-capacity search: skipped"),
        "knee search ran despite knee_search=false:\n{report}"
    );
    // Percentiles must be ordered regardless of profile — a sort bug in the
    // latency merge would invert them long before any wall-clock bar trips.
    assert!(
        stats.p50_us <= stats.p95_us && stats.p95_us <= stats.p99_us,
        "latency percentiles out of order: p50={} p95={} p99={}",
        stats.p50_us,
        stats.p95_us,
        stats.p99_us
    );
}

#[cfg(not(debug_assertions))]
#[test]
fn e15_clears_throughput_and_latency_floors_in_release() {
    let (report, stats) = exp_e15_server_load_with_stats(guard_config());
    assert!(
        stats.throughput_rps >= 2_000.0,
        "E15 spot throughput fell to {:.0} req/s (floor 2000):\n{report}",
        stats.throughput_rps
    );
    // Loopback p99 is ~300 us steady state; 20 ms catches a blocking
    // accept-loop or a verdict lock held across a socket write.
    assert!(
        stats.p99_us <= 20_000,
        "E15 p99 latency hit {} us (budget 20000):\n{report}",
        stats.p99_us
    );
}

#[cfg(debug_assertions)]
#[test]
fn e15_speed_bars_skipped_in_debug_profile() {
    // Placeholder so `cargo test` output shows the guard exists in debug
    // builds; the throughput and latency floors only make sense in release.
}
