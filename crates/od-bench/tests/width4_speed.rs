//! E13 acceptance guard for the bitset attribute-set core.
//!
//! Three criteria from the width-4 tentpole:
//!
//! 1. **Interactive width 4** — a release-profile width-4 traversal of the
//!    10k-row taxes and date-dimension workloads finishes well inside
//!    interactive time on `u64`-mask contexts, candidate sets and partition
//!    keys (the wall-clock assertion is release-only; the semantic assertions
//!    run in every profile and ride tier-1 too).
//! 2. **Width-3 equivalence** — the bitset traversal's verdict for every
//!    statement within the PR 4 node-store engine's width-3 bound is
//!    bit-for-bit the demand-driven engine's verdict, at ε = 0 and ε = 0.02
//!    (the engine validates each statement with the same serial scan the
//!    node-store traversal used, so this pins the representation change
//!    against the pre-bitset semantics).
//! 3. **Per-level decider batching** — decider queries are issued in batched
//!    round-trips, one per level (counted in `LatticeStats::decider_rounds`),
//!    never one per candidate.

use od_bench::timing::best_of_with;
use od_core::{AttrId, AttrSet, Relation};
use od_setbased::{discover_statements, LatticeConfig, SetBasedEngine, SetOd};
use od_workload::{generate_date_dim, tax};

/// Every non-trivial canonical statement over the relation's attributes with a
/// context of at most `max_context` attributes.
fn statements_within(rel: &Relation, max_context: usize) -> Vec<SetOd> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut contexts: Vec<AttrSet> = vec![AttrSet::new()];
    for _ in 0..max_context {
        let mut next = Vec::new();
        for ctx in &contexts {
            for &a in &universe {
                if !ctx.contains(a) {
                    next.push(ctx.with(a));
                }
            }
        }
        contexts.extend(next);
        contexts.sort();
        contexts.dedup();
    }
    let mut out = Vec::new();
    for ctx in &contexts {
        for &a in &universe {
            let c = SetOd::constancy(*ctx, a);
            if !c.is_trivial() {
                out.push(c);
            }
            for &b in &universe {
                if b > a {
                    let k = SetOd::compatibility(*ctx, a, b);
                    if !k.is_trivial() {
                        out.push(k);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn width4_traversal_is_interactive_on_bitset_contexts() {
    for rel in [
        tax::generate_taxes(10_000, 7),
        generate_date_dim(1998, 10_000, 2_450_000),
    ] {
        // Timed through the shared helper with od-obs instrumentation live,
        // so the interactivity bound below also guards the metrics overhead.
        let (d, elapsed) = best_of_with(1, "bench.width4.traversal", || {
            discover_statements(&rel, &LatticeConfig::default())
        });
        // Release-only wall-clock bound: width 4 measured well under the E12
        // width-3 numbers' order of magnitude on this container, so 3 s
        // absorbs heavy CI noise while still falsifying any return to
        // generate-then-check scaling at the fourth level.
        #[cfg(not(debug_assertions))]
        assert!(
            elapsed.as_secs_f64() < 3.0,
            "width-4 traversal took {elapsed:?} on {} rows",
            rel.len()
        );
        let _ = elapsed;
        assert_eq!(d.max_context(), 4, "width 4 is the default");
        assert!(
            d.stats.nodes_deleted > 0,
            "superkey contexts must delete their nodes: {:?}",
            d.stats
        );
        assert!(d.stats.propagated_away > 0, "{:?}", d.stats);
        // Deep levels only exist where the data sustains them (taxes' whole
        // universe is 4 attributes, so its level 4 offers no slots at all);
        // at the deepest level that actually created nodes, propagation must
        // resolve more candidate slots than the scans do.
        let deepest = d
            .level_stats()
            .iter()
            .rev()
            .find(|l| l.nodes_created > 0 && l.level >= 3)
            .expect("a level ≥ 3 with live nodes");
        assert!(
            deepest.propagated_away > deepest.validated,
            "deep levels must be propagation-dominated: {deepest:?}"
        );
        // Decider batching: one round-trip per level, never per candidate.
        assert!(d.stats.decider_rounds >= 1);
        assert!(
            d.stats.decider_rounds <= d.level_stats().len(),
            "decider rounds must be per level: {:?}",
            d.stats
        );
        assert!(d.stats.candidates > d.stats.decider_rounds);
        assert!(d.stats.peak_cached_partitions >= 1);
    }
}

#[test]
fn width3_verdicts_match_the_demand_driven_engine_bit_for_bit() {
    let rel = tax::generate_taxes(10_000, 7);
    for epsilon in [0.0, 0.02] {
        let d = discover_statements(
            &rel,
            &LatticeConfig {
                max_context: 3,
                epsilon,
                ..Default::default()
            },
        );
        let mut engine = SetBasedEngine::with_budget(&rel, 1, d.budget());
        for stmt in statements_within(&rel, 3) {
            assert_eq!(
                d.holds(&stmt),
                engine.statement_holds(&stmt),
                "ε = {epsilon}: bitset and demand-driven engines disagree on {stmt}"
            );
        }
        // Minimal verdicts are the scan verdicts themselves: identical
        // removal counts, witnesses and class counts.
        let mut fresh = SetBasedEngine::with_budget(&rel, 1, d.budget());
        for (stmt, verdict) in d.minimal_statements().iter().zip(d.verdicts()) {
            assert_eq!(
                &fresh.statement_verdict(stmt),
                verdict,
                "ε = {epsilon}: verdict drift on {stmt}"
            );
        }
    }
}

#[test]
fn width4_sharded_expansion_is_bit_identical_across_thread_counts() {
    let rel = generate_date_dim(1998, 2_000, 2_450_000);
    let serial = discover_statements(&rel, &LatticeConfig::default());
    for threads in [2, 8] {
        let par = discover_statements(
            &rel,
            &LatticeConfig {
                threads,
                ..Default::default()
            },
        );
        assert_eq!(serial.minimal_statements(), par.minimal_statements());
        assert_eq!(serial.verdicts(), par.verdicts());
        assert_eq!(serial.stats, par.stats, "threads = {threads}");
    }
}
