//! Determinism guard for the canonical metrics artifacts: the deterministic
//! section of a `BENCH_<experiment>.json` must be **byte-identical** across
//! repeated runs and across worker thread counts — that is the property that
//! makes the artifacts diffable in CI.  Wall-clock durations and RSS live in
//! the non-deterministic section and are deliberately not compared.

use od_bench::{exp_e12_width3_with_metrics, exp_e13_width4_with_metrics, ExperimentScale};
use od_core::{Relation, Schema, Value};
use od_setbased::{discover_statements, LatticeConfig};
use od_workload::generate_date_dim;
use proptest::prelude::*;

/// One discovery run on `rel` under a scoped registry; returns the
/// deterministic section's canonical bytes.
fn deterministic_bytes(
    experiment: &str,
    rel: &Relation,
    max_context: usize,
    threads: usize,
) -> String {
    let (_, report) = od_bench::metrics::capture(experiment, || {
        discover_statements(
            rel,
            &LatticeConfig {
                max_context,
                threads,
                ..Default::default()
            },
        )
    });
    report.deterministic_json()
}

#[test]
fn e12_deterministic_section_is_byte_identical_across_runs_and_threads() {
    let rel = generate_date_dim(1998, 1_000, 2_450_000);
    let reference = deterministic_bytes("e12", &rel, 3, 1);
    assert!(reference.contains("discovery.candidates"));
    assert!(reference.contains("discovery.partition_classes"));
    for threads in [1, 4, 8] {
        for run in 0..2 {
            assert_eq!(
                deterministic_bytes("e12", &rel, 3, threads),
                reference,
                "e12 deterministic section drifted (threads={threads}, run={run})"
            );
        }
    }
}

#[test]
fn e13_deterministic_section_is_byte_identical_across_runs_and_threads() {
    let rel = generate_date_dim(1998, 1_000, 2_450_000);
    let reference = deterministic_bytes("e13", &rel, 4, 1);
    assert!(reference.contains("discovery.decider_rounds"));
    for threads in [1, 4, 8] {
        for run in 0..2 {
            assert_eq!(
                deterministic_bytes("e13", &rel, 4, threads),
                reference,
                "e13 deterministic section drifted (threads={threads}, run={run})"
            );
        }
    }
}

#[test]
fn e14_deterministic_section_is_byte_identical_across_runs_and_threads() {
    // The whole E14 pipeline — scale-table generation, columnar encode,
    // three-way refinement, width-2 discovery — under the capture, at a CI
    // scale that still clears the radix thresholds.
    let (_, reference) = od_bench::exp_e14_columnar_with_metrics_threads(30_000, 1);
    let reference = reference.deterministic_json();
    assert!(reference.contains("relation.encode.radix_passes"));
    assert!(reference.contains("relation.encode.dict_entries"));
    assert!(reference.contains("discovery.radix_passes"));
    assert!(reference.contains("e14.refine.radix_passes"));
    for threads in [1, 4, 8] {
        for run in 0..2 {
            let (_, report) = od_bench::exp_e14_columnar_with_metrics_threads(30_000, threads);
            assert_eq!(
                report.deterministic_json(),
                reference,
                "e14 deterministic section drifted (threads={threads}, run={run})"
            );
        }
    }
}

#[test]
fn e16_deterministic_section_is_byte_identical_across_runs_and_threads() {
    // The whole E16 pipeline — scale-table generation, three-way partition
    // products, width-2/3/4 discovery on memoized radix products — under the
    // capture.  `discovery.product_radix_passes` is pinned across thread
    // counts: products are sharded but the pass counts are absorbed on the
    // orchestrating thread in lattice order.
    let (_, reference) = od_bench::exp_e16_lattice_with_metrics_threads(30_000, 1);
    let reference = reference.deterministic_json();
    assert!(reference.contains("e16.rows"));
    assert!(reference.contains("e16.product.radix_passes"));
    assert!(reference.contains("discovery.product_radix_passes"));
    for threads in [1, 4, 8] {
        for run in 0..2 {
            let (_, report) = od_bench::exp_e16_lattice_with_metrics_threads(30_000, threads);
            assert_eq!(
                report.deterministic_json(),
                reference,
                "e16 deterministic section drifted (threads={threads}, run={run})"
            );
        }
    }
}

#[test]
fn e17_deterministic_section_is_byte_identical_across_runs_and_worker_counts() {
    // The whole E17 pipeline — scale-table generation, the threaded oracle
    // run, the distributed traversal over in-process workers — under the
    // capture.  The deterministic section carries only merged discovery
    // counters (worker-invariant by the ledger design); frame/byte traffic
    // varies with the worker count and lives in the non-deterministic
    // section, so {1,2,4} workers must all produce identical bytes.
    let run = |workers| {
        let (_, report) = od_bench::exp_e17_dist_with_metrics_launcher(
            20_000,
            workers,
            &od_setbased::WorkerLauncher::in_process(),
        );
        report.deterministic_json()
    };
    let reference = run(1);
    assert!(reference.contains("e17.rows"));
    assert!(reference.contains("discovery.candidates"));
    assert!(!reference.contains("dist.frames"));
    for workers in [1, 2, 4] {
        for iteration in 0..2 {
            assert_eq!(
                run(workers),
                reference,
                "e17 deterministic section drifted (workers={workers}, run={iteration})"
            );
        }
    }
}

#[test]
fn e15_deterministic_section_is_byte_identical_across_runs_and_threads() {
    // The whole E15 service-layer load harness — server boot, pub/sub flip
    // phase, multi-threaded spot load over loopback TCP — with the wall-clock
    // knee search disabled: the deterministic section records only request
    // counts and verdict-flip accounting, both of which are functions of the
    // workload alone, never of scheduling.
    let config = |threads| od_bench::LoadConfig {
        rows: 800,
        requests: 400,
        threads,
        knee_search: false,
    };
    let (_, reference) = od_bench::exp_e15_server_load_with_metrics(config(1));
    let reference = reference.deterministic_json();
    assert!(reference.contains("e15.flip.broadcasts"));
    assert!(reference.contains("e15.load.requests"));
    assert!(reference.contains("e15.load.final_rows"));
    for threads in [1, 2, 5] {
        for run in 0..2 {
            let (_, report) = od_bench::exp_e15_server_load_with_metrics(config(threads));
            assert_eq!(
                report.deterministic_json(),
                reference,
                "e15 deterministic section drifted (threads={threads}, run={run})"
            );
        }
    }
}

#[test]
fn experiment_level_captures_are_byte_identical_across_runs() {
    // The reproduce binary's own capture path: the full tiny E12/E13
    // experiments (two workloads each), deterministic sections compared
    // byte-for-byte across two consecutive runs — exactly what the CI
    // bench-smoke diff step asserts on the release binary.
    let scale = ExperimentScale::tiny();
    let (_, first) = exp_e12_width3_with_metrics(scale);
    let (_, second) = exp_e12_width3_with_metrics(scale);
    assert_eq!(first.deterministic_json(), second.deterministic_json());
    let (_, first) = exp_e13_width4_with_metrics(scale, 4);
    let (_, second) = exp_e13_width4_with_metrics(scale, 4);
    assert_eq!(first.deterministic_json(), second.deterministic_json());
}

fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..3, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random relations the deterministic section stays byte-identical
    /// across two runs at each of 1/4/8 worker threads — randomized cover for
    /// the fixed-workload guards above.
    #[test]
    fn deterministic_section_is_thread_and_run_invariant(rel in relation_strategy(4, 12)) {
        let reference = deterministic_bytes("prop", &rel, 3, 1);
        for threads in [1usize, 4, 8] {
            prop_assert_eq!(
                &deterministic_bytes("prop", &rel, 3, threads),
                &reference,
                "threads={}",
                threads
            );
            prop_assert_eq!(
                &deterministic_bytes("prop", &rel, 3, threads),
                &reference,
                "threads={} (second run)",
                threads
            );
        }
    }
}
