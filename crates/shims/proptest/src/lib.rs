//! Minimal, dependency-free stand-in for the subset of the `proptest` API this
//! workspace uses (the build environment has no network access to crates.io).
//!
//! Supported surface: the [`proptest!`] macro with a `#![proptest_config(...)]`
//! header and `arg in strategy` bindings, [`prop_assert!`] / [`prop_assert_eq!`],
//! integer-range strategies, [`prop::collection::vec`], and
//! [`strategy::Strategy::prop_map`].  Cases are generated from a deterministic
//! per-case seed; there is **no shrinking** — a failure reports the case number,
//! which reproduces deterministically.

#![forbid(unsafe_code)]

/// Test-runner plumbing: configuration, RNG, and failure type.
pub mod test_runner {
    use std::fmt;

    /// Run configuration (subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case random generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` (fully deterministic).
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    // Tuples of strategies are strategies for tuples (as in real proptest);
    // components are generated left to right from the shared RNG.
    macro_rules! impl_tuple_strategy {
        ($($s:ident => $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S1 => s1, S2 => s2);
    impl_tuple_strategy!(S1 => s1, S2 => s2, S3 => s3);
    impl_tuple_strategy!(S1 => s1, S2 => s2, S3 => s3, S4 => s4);

    /// Always generates a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A collection-size specification (`n`, `a..b`, or `a..=b`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        /// Pick a size uniformly.
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_inclusive - self.min + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "size range is empty");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` (see [`crate::prop::collection::vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> VecStrategy<S> {
        /// Build from an element strategy and a size specification.
        pub fn new(element: S, size: impl Into<SizeRange>) -> Self {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirroring `proptest::prop` paths used via the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s of values from `element`, with a random size drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size)
        }
    }
}

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Property-test macro: runs each property over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property '{}' failed at case #{}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a [`proptest!`] body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let s = prop::collection::vec(0i64..4, 0..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 6);
            assert!(v.iter().all(|&x| (0..4).contains(&x)));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let mut rng = crate::test_runner::TestRng::for_case(7);
        let s = (0i64..4, prop::collection::vec(0u32..3, 1..3), 10u8..12);
        for _ in 0..100 {
            let (a, v, c) = s.generate(&mut rng);
            assert!((0..4).contains(&a));
            assert!(!v.is_empty() && v.len() < 3);
            assert!((10..12).contains(&c));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(9);
        let mut b = crate::test_runner::TestRng::for_case(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires bindings, early returns, and assertions correctly.
        #[test]
        fn macro_smoke(x in 0i64..100, v in prop::collection::vec(0u32..3, 0..=4)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        /// The no-config form defaults to 256 cases.
        #[test]
        fn macro_default_config(x in 0u8..10) {
            prop_assert!(x < 10, "x was {}", x);
        }
    }
}
