//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses (the build environment has no network access to crates.io).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64/xoshiro256** generator), the
//! [`Rng`] and [`SeedableRng`] traits with `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].  The streams are deterministic for a given
//! seed, which is all the workload generators require; no claim of statistical
//! quality beyond that is made.

#![forbid(unsafe_code)]

/// Core random-number-generator trait (subset of `rand::RngCore` + `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A value uniformly distributed over `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
        Self: Sized,
    {
        let UniformRange {
            low,
            high_inclusive,
        } = range.into();
        T::sample(self, low, high_inclusive)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A closed range `[low, high_inclusive]` for uniform sampling.
pub struct UniformRange<T> {
    low: T,
    high_inclusive: T,
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy {
    /// Sample uniformly from `[low, high]` (inclusive).
    fn sample<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for synthetic workload generation.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
        impl From<std::ops::Range<$t>> for UniformRange<$t> {
            fn from(r: std::ops::Range<$t>) -> Self {
                assert!(r.start < r.end, "gen_range: empty range");
                UniformRange { low: r.start, high_inclusive: r.end - 1 }
            }
        }
        impl From<std::ops::RangeInclusive<$t>> for UniformRange<$t> {
            fn from(r: std::ops::RangeInclusive<$t>) -> Self {
                UniformRange { low: *r.start(), high_inclusive: *r.end() }
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5_000i64..400_000);
            assert!((5_000..400_000).contains(&v));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }
}
