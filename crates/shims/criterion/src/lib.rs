//! Minimal, dependency-free stand-in for the subset of the `criterion` bench
//! API the workspace's benches use (the build environment has no network access
//! to crates.io).
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! timed batches until `measurement_time` elapses or `sample_size` samples are
//! collected, and reports min / median / mean per-iteration wall time.  When the
//! binary is invoked by `cargo test` (any `--test` flag present) every benchmark
//! runs exactly one iteration so test runs stay fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    config: BenchConfig,
}

impl Bencher<'_> {
    /// Time `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.config.measurement_time;
        while self.samples.len() < self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline && !self.samples.is_empty() {
                break;
            }
        }
    }
}

#[derive(Clone, Copy)]
struct BenchConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
            test_mode: false,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: BenchConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Set the measurement-time budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Set the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            config: self.config,
        };
        f(&mut b);
        report(&self.name, &id, &samples, self.config.test_mode);
    }

    /// Benchmark a routine under a plain name.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher<'_>)) {
        self.run_one(id.to_string(), f);
    }

    /// Benchmark a routine parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) {
        self.run_one(id.to_string(), |b| f(b, input));
    }

    /// Finish the group (formatting parity with criterion; no-op here).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration], test_mode: bool) {
    if test_mode {
        println!("{group}/{id}: ok (test mode, 1 iteration)");
        return;
    }
    if samples.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        sorted.len()
    );
}

/// Top-level bench context handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench binaries with `--test`; `cargo bench` passes
        // `--bench`.  In test mode each benchmark executes a single iteration.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = BenchConfig {
            test_mode: self.test_mode,
            ..BenchConfig::default()
        };
        BenchmarkGroup {
            name: name.into(),
            config,
            _criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Collect bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Entry point running every registered group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(3);
        let mut ran = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("g", 42), &42, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(ran, 1, "test mode runs exactly one iteration");
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut samples = Vec::new();
        let config = BenchConfig {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_size: 4,
            test_mode: false,
        };
        let mut b = Bencher {
            samples: &mut samples,
            config,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(!samples.is_empty());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 365).to_string(), "f/365");
    }
}
