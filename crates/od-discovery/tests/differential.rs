//! Differential tests between the naive (sort-per-candidate) discovery engine
//! and the set-based partition engine: identical minimal OD sets on random
//! relations, and the acceptance criteria on the date-warehouse workload.

use od_core::check::od_holds;
use od_core::{Relation, Schema, Value};
use od_discovery::{discover_ods, discover_ods_naive, DiscoveryConfig};
use od_workload::generate_date_dim;
use proptest::prelude::*;

fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..3, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both engines return the same minimal OD set on random small relations,
    /// with and without implication pruning, and the set-based engine never
    /// touches the data for more candidates than the naive one.
    #[test]
    fn engines_return_the_same_minimal_od_set(rel in relation_strategy(4, 10)) {
        for prune in [true, false] {
            let config = DiscoveryConfig { prune_implied: prune, ..Default::default() };
            let set_based = discover_ods(&rel, config);
            let naive = discover_ods_naive(&rel, config);
            prop_assert_eq!(&set_based.ods, &naive.ods, "prune={}", prune);
            prop_assert_eq!(set_based.candidates, naive.candidates);
            prop_assert!(set_based.validated <= naive.validated);
            // Every reported OD genuinely holds.
            for od in &set_based.ods {
                prop_assert!(od_holds(&rel, od));
            }
        }
    }

    /// Width-1 discovery (the old default) agrees too.
    #[test]
    fn engines_agree_at_width_one(rel in relation_strategy(5, 8)) {
        let config = DiscoveryConfig { max_lhs: 1, max_rhs: 1, ..Default::default() };
        let set_based = discover_ods(&rel, config);
        let naive = discover_ods_naive(&rel, config);
        prop_assert_eq!(set_based.ods, naive.ods);
    }

    /// Width-3 candidates exercise the node-based lattice's third level
    /// (compatibility contexts of size 3): the traversal must still pin the
    /// seed's naive oracle exactly, at ε = 0 and ε > 0.
    #[test]
    fn node_lattice_agrees_with_naive_at_width_three(rel in relation_strategy(4, 10)) {
        for epsilon in [0.0, 0.2] {
            let config = DiscoveryConfig {
                max_lhs: 3,
                max_rhs: 2,
                epsilon,
                ..Default::default()
            };
            let set_based = discover_ods(&rel, config);
            let naive = discover_ods_naive(&rel, config);
            prop_assert_eq!(&set_based.ods, &naive.ods, "ε = {}", epsilon);
            // Every candidate was answerable from the lattice profile: no
            // fallback scans beyond it.
            let stats = set_based.lattice_stats.expect("set-based runs profile");
            prop_assert_eq!(set_based.statement_validations, stats.validated);
            prop_assert_eq!(set_based.validated, 0);
        }
    }

    /// Width-4 candidates exercise the bitset lattice's fourth level (the new
    /// default `max_context`): the traversal must still pin the seed's naive
    /// oracle exactly, at ε = 0 and ε > 0, with every candidate answered from
    /// the profile scan-free.
    #[test]
    fn node_lattice_agrees_with_naive_at_width_four(rel in relation_strategy(4, 9)) {
        for epsilon in [0.0, 0.2] {
            let config = DiscoveryConfig {
                max_lhs: 4,
                max_rhs: 1,
                epsilon,
                ..Default::default()
            };
            let set_based = discover_ods(&rel, config);
            let naive = discover_ods_naive(&rel, config);
            prop_assert_eq!(&set_based.ods, &naive.ods, "ε = {}", epsilon);
            // Every candidate was answerable from the width-4 profile: no
            // fallback scans beyond it.
            let stats = set_based.lattice_stats.expect("set-based runs profile");
            prop_assert_eq!(set_based.statement_validations, stats.validated);
            prop_assert_eq!(set_based.validated, 0);
            // Decider rounds stay per level even under discovery's clamped
            // depth (levels 0..=min(4, needed)).
            prop_assert!(stats.decider_rounds <= 5, "{:?}", stats);
        }
    }

    /// When the configured lattice depth undercuts the candidate widths, the
    /// per-candidate engine fallback keeps the result identical.
    #[test]
    fn shallow_profiles_fall_back_without_changing_the_result(rel in relation_strategy(4, 9)) {
        let wide = DiscoveryConfig { max_lhs: 3, max_rhs: 2, ..Default::default() };
        let shallow = DiscoveryConfig { max_context: 1, ..wide };
        let full = discover_ods(&rel, wide);
        let clipped = discover_ods(&rel, shallow);
        prop_assert_eq!(&full.ods, &clipped.ods);
        let naive = discover_ods_naive(&rel, wide);
        prop_assert_eq!(&clipped.ods, &naive.ods);
    }

    /// `epsilon: 0.0` is bit-identical to exact discovery, and for any ε both
    /// engines agree on the approximate OD set and its error scores (the naive
    /// path measures each statement with the sort-based evidence oracle, the
    /// set-based path with per-class partition arithmetic).
    #[test]
    fn engines_agree_under_error_thresholds(rel in relation_strategy(4, 10)) {
        let exact = discover_ods(&rel, DiscoveryConfig::default());
        let explicit_zero = discover_ods(
            &rel, DiscoveryConfig { epsilon: 0.0, ..Default::default() });
        prop_assert_eq!(&exact.ods, &explicit_zero.ods);
        prop_assert_eq!(&exact.errors, &explicit_zero.errors);
        prop_assert!(exact.errors.iter().all(|&e| e == 0.0));

        for epsilon in [0.1, 0.3, 1.0] {
            let config = DiscoveryConfig { epsilon, ..Default::default() };
            let set_based = discover_ods(&rel, config);
            let naive = discover_ods_naive(&rel, config);
            prop_assert_eq!(&set_based.ods, &naive.ods, "ε = {}", epsilon);
            // The naive oracle scores every statement exactly; the set-based
            // engine may report an inherited upper bound — never more than ε,
            // and never below the oracle's exact score.
            prop_assert_eq!(set_based.errors.len(), naive.errors.len());
            for (fast, oracle) in set_based.errors.iter().zip(naive.errors.iter()) {
                prop_assert!((0.0..=epsilon).contains(fast), "score {} at ε = {}", fast, epsilon);
                prop_assert!(fast >= oracle, "set-based {} under oracle {}", fast, oracle);
            }
            // Larger thresholds only grow the result (the exact ODs survive).
            for od in &exact.ods {
                prop_assert!(set_based.ods.contains(od), "{} lost at ε = {}", od, epsilon);
            }
        }
    }
}

/// The tentpole acceptance criterion: on the date-warehouse fixture the
/// set-based engine discovers the same minimal ODs as the naive engine while
/// validating strictly fewer candidates against the data.
#[test]
fn warehouse_same_ods_with_strictly_fewer_data_validations() {
    let rel = generate_date_dim(1998, 200, 2_450_000);
    let config = DiscoveryConfig::default();
    let set_based = discover_ods(&rel, config);
    let naive = discover_ods_naive(&rel, config);

    assert_eq!(
        set_based.ods, naive.ods,
        "engines must find the same minimal ODs"
    );
    assert!(
        !set_based.ods.is_empty(),
        "the calendar hierarchy must be discovered"
    );
    assert!(
        set_based.validated < naive.validated,
        "set-based candidates touching data ({}) must be strictly fewer than naive ({})",
        set_based.validated,
        naive.validated,
    );
    assert!(
        set_based.statement_validations < naive.validated,
        "even counting per-statement scans ({}) the set-based engine must undercut \
         the naive engine's full-candidate validations ({})",
        set_based.statement_validations,
        naive.validated,
    );
    // The calendar's signature OD is implied by the minimal result (it may not
    // be listed itself: [d_date_sk] ↦ … ODs found earlier subsume it).
    let s = rel.schema();
    let date = s.attr_by_name("d_date").unwrap();
    let year = s.attr_by_name("d_year").unwrap();
    let m = od_infer::OdSet::from_ods(set_based.ods.clone());
    assert!(
        od_infer::Decider::new(&m).implies(&od_core::OrderDependency::new(vec![date], vec![year]))
    );
}
