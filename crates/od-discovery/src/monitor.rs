//! Live monitoring of discovered ODs on a changing table.
//!
//! [`discover_ods`](crate::discover::discover_ods) profiles one snapshot;
//! [`Monitor`] keeps the result honest afterwards.  It wraps an
//! `od-setbased` [`StreamMonitor`] (delta-maintained partitions plus
//! per-statement verdict ledgers) and tracks a watch list of ODs: each
//! [`DeltaBatch`] re-derives only the partition classes it touched, re-reads
//! every watched OD's worst-statement `g3` removal count from the ledgers, and
//! reports which ODs **flipped** across the ε acceptance boundary.
//!
//! The optimizer stays in the loop through [`Monitor::sync_registry`]: ODs
//! that hold *exactly* on the live table are (re)installed into the
//! [`OdRegistry`], ODs that no longer do are retracted — a rewrite license is
//! only ever backed by currently-clean data, mirroring the install policy of
//! [`Discovery::install_into`](crate::discover::Discovery::install_into).
//!
//! Downstream consumers need not poll: [`Monitor::subscribe`] registers a
//! synchronous callback that [`Monitor::apply`] invokes once per batch with
//! the fresh [`MonitorReport`], so ε-boundary flips are *pushed* (a warehouse
//! loader can pause a feed the moment its ordering assumption breaks, and
//! resume when it heals) instead of being discovered on the next poll.

use crate::discover::Discovery;
use od_core::{OrderDependency, Relation};
use od_optimizer::OdRegistry;
use od_setbased::stream::{
    CompactStats, DeltaBatch, DeltaSummary, StreamError, StreamMonitor, TupleId,
};
use od_setbased::SetOd;
use std::collections::HashSet;

/// The live status of one watched OD after a delta.
#[derive(Debug, Clone, PartialEq)]
pub struct OdStatus {
    /// The watched OD.
    pub od: OrderDependency,
    /// Worst canonical statement's exact `g3` removal count on the live table.
    pub removal_count: usize,
    /// The corresponding `g3` error (removal / alive rows).
    pub g3: f64,
    /// Does the OD hold within the monitor's ε budget right now?
    pub accepted: bool,
    /// Did `accepted` change relative to before the last delta?
    pub flipped: bool,
}

/// What one [`Monitor::apply`] call observed.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Per-OD statuses, in watch order, with flips marked.
    pub statuses: Vec<OdStatus>,
    /// Ids assigned to the batch's inserted rows.
    pub inserted: Vec<TupleId>,
    /// Number of tuples the batch deleted.
    pub deleted: usize,
    /// Partition classes the batch touched (the maintenance cost unit).
    pub touched_classes: usize,
}

impl MonitorReport {
    /// The statuses that flipped across the acceptance boundary.
    pub fn flips(&self) -> impl Iterator<Item = &OdStatus> {
        self.statuses.iter().filter(|s| s.flipped)
    }
}

struct WatchedOd {
    od: OrderDependency,
    stmts: Vec<SetOd>,
    accepted: bool,
}

/// Identifies a registered [`Monitor::subscribe`] callback so it can be
/// detached again with [`Monitor::unsubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// A [`Monitor::subscribe`]d consumer: invoked synchronously with each
/// batch's report.  `Send` so registering subscribers does not cost the
/// monitor its ability to move to a worker thread.
type Subscriber = Box<dyn FnMut(&MonitorReport) + Send>;

/// Watches a set of ODs on a live table, keeping each one's `g3` verdict
/// current under tuple inserts and deletes.
///
/// ```
/// use od_core::{fixtures, Value};
/// use od_discovery::{discover_ods, DiscoveryConfig, Monitor};
/// use od_setbased::stream::DeltaBatch;
///
/// let rel = fixtures::example_5_taxes();
/// let discovery = discover_ods(&rel, DiscoveryConfig::default());
/// let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
/// assert!(monitor.statuses().iter().all(|s| s.accepted));
///
/// // Corrupt the stream: a tuple violating the tax-bracket ODs arrives.
/// let mut bad = rel.tuple(0).clone();
/// bad[1] = Value::Int(999);
/// let report = monitor.apply(&DeltaBatch::new().insert(bad)).unwrap();
/// assert!(report.flips().count() > 0);
/// ```
pub struct Monitor {
    stream: StreamMonitor,
    watched: Vec<WatchedOd>,
    epsilon: f64,
    subscribers: Vec<(SubscriptionId, Subscriber)>,
    next_subscription: u64,
}

impl Monitor {
    /// Watch `ods` on a snapshot of `rel` with error threshold `epsilon`
    /// (ε = 0 monitors exact satisfaction).  `threads > 1` shards large
    /// initial scans and large delta patches.
    pub fn watch(
        rel: &Relation,
        ods: impl IntoIterator<Item = OrderDependency>,
        epsilon: f64,
        threads: usize,
    ) -> Self {
        let mut stream = StreamMonitor::new(rel, threads);
        let mut watched = Vec::new();
        for od in ods {
            let stmts = stream.monitor_od(&od);
            watched.push(WatchedOd {
                od,
                stmts,
                accepted: false,
            });
        }
        let mut monitor = Monitor {
            stream,
            watched,
            epsilon,
            subscribers: Vec::new(),
            next_subscription: 0,
        };
        // Baseline acceptance, so the first delta's flips are meaningful.
        let budget = monitor.stream.error_budget(epsilon);
        for i in 0..monitor.watched.len() {
            monitor.watched[i].accepted = monitor.removal_of(i) <= budget;
        }
        monitor
    }

    /// Watch the **install set** of a discovery run — the zero-error ODs that
    /// [`Discovery::install_into`] would feed to the optimizer — so registry
    /// installs can be kept in sync with the data they were profiled from.
    /// Serial; see [`Self::watch_install_set_with_threads`] for sharding.
    pub fn watch_install_set(rel: &Relation, discovery: &Discovery, epsilon: f64) -> Self {
        Self::watch_install_set_with_threads(rel, discovery, epsilon, 1)
    }

    /// [`Self::watch_install_set`] with `threads > 1` sharding large initial
    /// scans and large delta patches (mirrors
    /// [`SetBasedEngine::with_threads`](od_setbased::SetBasedEngine::with_threads)).
    pub fn watch_install_set_with_threads(
        rel: &Relation,
        discovery: &Discovery,
        epsilon: f64,
        threads: usize,
    ) -> Self {
        let ods = discovery
            .ods
            .iter()
            .zip(&discovery.errors)
            .filter(|(_, &err)| err == 0.0)
            .map(|(od, _)| od.clone());
        Self::watch(rel, ods, epsilon, threads)
    }

    /// The error threshold the monitor accepts against.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The current tuple-removal budget `⌊ε·n⌋` (moves with the table size).
    pub fn budget(&self) -> usize {
        self.stream.error_budget(self.epsilon)
    }

    /// Alive rows in the live table.
    pub fn rows(&self) -> usize {
        self.stream.alive_rows()
    }

    /// The underlying statement-level stream monitor.
    pub fn stream(&self) -> &StreamMonitor {
        &self.stream
    }

    /// Compact the underlying stream monitor
    /// ([`StreamMonitor::compact`]): dead tuple ids, their retained codes,
    /// and distinct values only dead rows carried are dropped, and **every
    /// previously returned [`TupleId`] is invalidated**.  Watched ODs, their
    /// verdicts, and lifetime stats are preserved.  Returns what the rebuild
    /// reclaimed.
    pub fn compact(&mut self) -> CompactStats {
        self.stream.compact()
    }

    /// Register a synchronous consumer: `callback` is invoked by every
    /// successful [`Self::apply`], after the ledgers are patched, with the
    /// batch's [`MonitorReport`] — ε-boundary flips arrive as
    /// [`MonitorReport::flips`] without any polling.  Callbacks run in
    /// registration order, on the caller's thread, before `apply` returns.
    pub fn subscribe(
        &mut self,
        callback: impl FnMut(&MonitorReport) + Send + 'static,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        self.subscribers.push((id, Box::new(callback)));
        id
    }

    /// Detach a [`Self::subscribe`]d callback.  Returns whether it was still
    /// registered.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let before = self.subscribers.len();
        self.subscribers.retain(|(sid, _)| *sid != id);
        self.subscribers.len() < before
    }

    /// Apply a batch and report every watched OD's live status, marking the
    /// ODs whose accept/reject verdict flipped.  Subscribed callbacks are
    /// pushed the same report before it is returned.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<MonitorReport, StreamError> {
        let summary: DeltaSummary = self.stream.apply_delta(batch)?;
        let statuses = (0..self.watched.len())
            .map(|i| {
                let mut status = self.status_of(i);
                status.flipped = status.accepted != self.watched[i].accepted;
                status
            })
            .collect::<Vec<_>>();
        for (entry, status) in self.watched.iter_mut().zip(&statuses) {
            entry.accepted = status.accepted;
        }
        let report = MonitorReport {
            statuses,
            inserted: summary.inserted,
            deleted: summary.deleted,
            touched_classes: summary.touched_classes,
        };
        od_obs::add("monitor.deltas", 1);
        od_obs::add("monitor.flips", report.flips().count() as u64);
        for (_, callback) in &mut self.subscribers {
            callback(&report);
        }
        Ok(report)
    }

    /// The current statuses of every watched OD (no flips marked).
    pub fn statuses(&self) -> Vec<OdStatus> {
        (0..self.watched.len()).map(|i| self.status_of(i)).collect()
    }

    /// The live status of watched OD `i` (with `flipped` unset).
    fn status_of(&self, i: usize) -> OdStatus {
        let removal = self.removal_of(i);
        let n = self.stream.alive_rows();
        OdStatus {
            od: self.watched[i].od.clone(),
            removal_count: removal,
            g3: if n == 0 {
                0.0
            } else {
                removal as f64 / n as f64
            },
            accepted: removal <= self.budget(),
            flipped: false,
        }
    }

    /// Reconcile an [`OdRegistry`] with the live verdicts: watched ODs holding
    /// **exactly** (removal 0) are installed for `table` if absent, all others
    /// are retracted if present.  Returns `(installed, retracted)`.
    ///
    /// Exactness — not the ε budget — gates installation, for the same reason
    /// [`Discovery::install_into`] only installs zero-error ODs: an OD that
    /// merely approximately holds is not a sound rewrite license.
    pub fn sync_registry(&self, registry: &mut OdRegistry, table: &str) -> (usize, usize) {
        // Expand the table's constraints once; installs/retracts below keep
        // the local view current, so the loop stays O(W) in watched ODs.
        let mut present: HashSet<OrderDependency> = registry.ods(table).ods().into_iter().collect();
        let mut installed = 0;
        let mut retracted = 0;
        for i in 0..self.watched.len() {
            let od = &self.watched[i].od;
            let exact = self.removal_of(i) == 0;
            if exact && !present.contains(od) {
                registry.add_od(table, od.clone());
                present.insert(od.clone());
                installed += 1;
            } else if !exact && present.contains(od) {
                registry.remove_od(table, od);
                present.remove(od);
                retracted += 1;
            }
        }
        od_obs::add("monitor.installs", installed as u64);
        od_obs::add("monitor.retracts", retracted as u64);
        (installed, retracted)
    }

    /// Worst-statement removal count of watched OD `i` from the ledgers.
    fn removal_of(&self, i: usize) -> usize {
        self.watched[i]
            .stmts
            .iter()
            .map(|stmt| {
                self.stream
                    .statement_removal(stmt)
                    .expect("watched statements are always monitored")
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::{discover_ods, DiscoveryConfig};
    use od_core::{fixtures, Value};

    #[test]
    fn monitor_tracks_flips_both_ways() {
        let rel = fixtures::example_5_taxes();
        let discovery = discover_ods(&rel, DiscoveryConfig::default());
        assert!(!discovery.ods.is_empty());
        let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
        assert!(monitor.statuses().iter().all(|s| s.accepted));

        // A tuple agreeing with row 0 on income but with an absurd bracket
        // breaks income ↦ bracket.
        let mut bad = rel.tuple(0).clone();
        bad[1] = Value::Int(999);
        let report = monitor.apply(&DeltaBatch::new().insert(bad)).unwrap();
        let flipped: Vec<_> = report.flips().collect();
        assert!(!flipped.is_empty(), "corruption must flip some OD");
        assert!(flipped.iter().all(|s| !s.accepted && s.removal_count > 0));

        // Deleting the offender flips them back.
        let heal = DeltaBatch::new().delete(report.inserted[0]);
        let healed = monitor.apply(&heal).unwrap();
        assert!(healed.flips().count() >= flipped.len());
        assert!(healed.statuses.iter().all(|s| s.accepted));
        assert_eq!(monitor.rows(), rel.len());
    }

    #[test]
    fn epsilon_budget_absorbs_small_corruption() {
        // 50 clean rows: with ε = 10% one bad tuple stays within budget, so
        // nothing flips; with ε = 0 the same delta flips the OD.
        let mut schema = od_core::Schema::new("t");
        let income = schema.add_attr("income");
        let bracket = schema.add_attr("bracket");
        let rel = od_core::Relation::from_rows(
            schema,
            (0..50i64).map(|i| vec![Value::Int(i), Value::Int(i / 10)]),
        )
        .unwrap();
        let od = OrderDependency::new(vec![income], vec![bracket]);
        let bad = vec![Value::Int(0), Value::Int(4)];

        let mut tolerant = Monitor::watch(&rel, [od.clone()], 0.1, 1);
        let report = tolerant
            .apply(&DeltaBatch::new().insert(bad.clone()))
            .unwrap();
        assert_eq!(report.flips().count(), 0);
        assert!(report.statuses[0].accepted && report.statuses[0].g3 > 0.0);

        let mut strict = Monitor::watch(&rel, [od], 0.0, 1);
        let report = strict.apply(&DeltaBatch::new().insert(bad)).unwrap();
        assert_eq!(report.flips().count(), 1);
        assert!(!report.statuses[0].accepted);
    }

    #[test]
    fn subscribers_are_pushed_flips_per_batch() {
        use std::sync::{Arc, Mutex};

        let rel = fixtures::example_5_taxes();
        let discovery = discover_ods(&rel, DiscoveryConfig::default());
        let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);

        // Two independent consumers: one counts flipped ODs, one counts
        // batches.
        let flips: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&flips);
        let flip_sub = monitor.subscribe(move |report| {
            sink.lock().unwrap().push(report.flips().count());
        });
        let batches = Arc::new(Mutex::new(0usize));
        let counter = Arc::clone(&batches);
        monitor.subscribe(move |_| *counter.lock().unwrap() += 1);

        // A clean insert: callbacks fire, nothing flips.
        let clean = rel.tuple(0).clone();
        monitor.apply(&DeltaBatch::new().insert(clean)).unwrap();
        assert_eq!(flips.lock().unwrap().as_slice(), &[0]);

        // A corrupting insert is pushed as a flip, no polling involved.
        let mut bad = rel.tuple(0).clone();
        bad[1] = Value::Int(999);
        let report = monitor.apply(&DeltaBatch::new().insert(bad)).unwrap();
        let broken = report.flips().count();
        assert!(broken > 0);
        assert_eq!(flips.lock().unwrap().as_slice(), &[0, broken]);
        assert_eq!(*batches.lock().unwrap(), 2);

        // Unsubscribing stops delivery for that consumer only.
        assert!(monitor.unsubscribe(flip_sub));
        assert!(!monitor.unsubscribe(flip_sub), "already detached");
        monitor
            .apply(&DeltaBatch::new().delete(report.inserted[0]))
            .unwrap();
        assert_eq!(
            flips.lock().unwrap().len(),
            2,
            "detached consumer sees nothing"
        );
        assert_eq!(*batches.lock().unwrap(), 3);
    }

    #[test]
    fn monitors_stay_send_with_subscribers_attached() {
        let rel = fixtures::example_5_taxes();
        let discovery = discover_ods(&rel, DiscoveryConfig::default());
        let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
        monitor.subscribe(|_| {});
        // A subscribed monitor can still move to a worker thread.
        std::thread::spawn(move || {
            monitor
                .apply(&DeltaBatch::new().insert(rel.tuple(0).clone()))
                .unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn sync_registry_installs_and_retracts() {
        let rel = fixtures::example_5_taxes();
        let table = rel.schema().name().to_string();
        let discovery = discover_ods(&rel, DiscoveryConfig::default());
        let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
        let mut registry = OdRegistry::new();

        let (installed, retracted) = monitor.sync_registry(&mut registry, &table);
        assert_eq!(installed, discovery.ods.len());
        assert_eq!(retracted, 0);
        // Idempotent while nothing changes.
        assert_eq!(monitor.sync_registry(&mut registry, &table), (0, 0));

        // Corrupt, re-sync: broken ODs are withdrawn from the registry.
        let mut bad = rel.tuple(0).clone();
        bad[1] = Value::Int(999);
        let report = monitor.apply(&DeltaBatch::new().insert(bad)).unwrap();
        let broken = report.statuses.iter().filter(|s| !s.accepted).count();
        assert!(broken > 0);
        let (installed, retracted) = monitor.sync_registry(&mut registry, &table);
        assert_eq!((installed, retracted), (0, broken));
        assert_eq!(
            registry.ods(&table).ods().len(),
            discovery.ods.len() - broken
        );

        // Heal, re-sync: they come back.
        monitor
            .apply(&DeltaBatch::new().delete(report.inserted[0]))
            .unwrap();
        let (installed, retracted) = monitor.sync_registry(&mut registry, &table);
        assert_eq!((installed, retracted), (broken, 0));
        assert_eq!(registry.ods(&table).ods().len(), discovery.ods.len());
    }
}
