//! # od-discovery — finding order dependencies in data and in expressions
//!
//! Two ways ODs become known to a system besides being declared by hand
//! (Sections 2.2 and 6 of the paper):
//!
//! * [`discover`] — profile a relation instance for ODs/FDs that hold on it
//!   exactly, or — with [`DiscoveryConfig::epsilon`] — for approximate ODs
//!   whose TANE-style `g3` error stays under a threshold, with axiom-based
//!   pruning of implied candidates.  Validation defaults to the
//!   partition-backed set-based engine of the `od-setbased` crate
//!   ([`DiscoveryEngine::SetBased`]); the original sort-per-candidate path
//!   remains available as [`DiscoveryEngine::Naive`] and serves as the oracle
//!   in differential tests.  Discovered exact ODs can be fed straight into the
//!   optimizer's registry with [`Discovery::install_into`];
//! * [`monotone`] — derive ODs from generated-column expressions by
//!   monotonicity analysis (the DB2 generated-columns technique of
//!   reference [12]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discover;
pub mod monotone;

pub use discover::{
    discover_fds, discover_ods, discover_ods_naive, Discovery, DiscoveryConfig, DiscoveryEngine,
};
pub use monotone::{derived_column_ods, monotonicity, DerivedColumn, Monotonicity};
