//! # od-discovery — finding order dependencies in data and in expressions
//!
//! Two ways ODs become known to a system besides being declared by hand
//! (Sections 2.2 and 6 of the paper):
//!
//! * [`discover`] — profile a relation instance for ODs/FDs that hold on it
//!   exactly, or — with [`DiscoveryConfig::epsilon`] — for approximate ODs
//!   whose TANE-style `g3` error stays under a threshold, with axiom-based
//!   pruning of implied candidates.  Validation defaults to the
//!   partition-backed set-based engine of the `od-setbased` crate
//!   ([`DiscoveryEngine::SetBased`]); the original sort-per-candidate path
//!   remains available as [`DiscoveryEngine::Naive`] and serves as the oracle
//!   in differential tests.  Discovered exact ODs can be fed straight into the
//!   optimizer's registry with [`Discovery::install_into`];
//! * [`monotone`] — derive ODs from generated-column expressions by
//!   monotonicity analysis (the DB2 generated-columns technique of
//!   reference \[12\]).
//!
//! Discovery is snapshot-bound, but its output need not be: [`monitor`] keeps
//! discovered ODs live on a *changing* table.  A [`Monitor`] watches a set of
//! ODs (typically the zero-error install set of a discovery run), maintains
//! their exact `g3` removal counts under tuple insert/delete
//! [`DeltaBatch`](od_setbased::stream::DeltaBatch)es in `O(touched classes)`
//! per delta — via `od-setbased`'s delta-maintained partitions and verdict
//! ledgers — and can [`sync`](Monitor::sync_registry) the optimizer's
//! [`OdRegistry`](od_optimizer::OdRegistry) so rewrite licenses track the
//! data: an OD that stops holding is retracted, one that heals is
//! reinstalled.
//!
//! ## The `Verdict` / `g3` vocabulary, briefly
//!
//! Every validation in this stack answers with evidence, not a boolean: a
//! [`Verdict`](od_setbased::Verdict) carries the minimal number of tuples
//! whose removal makes the checked statement hold (the TANE-style `g3`
//! numerator) plus sampled violating row pairs.  Exact discovery is the
//! special case `removal_count == 0`; [`DiscoveryConfig::epsilon`] relaxes
//! acceptance to `removal_count ≤ ⌊ε·n⌋` and [`Discovery::errors`] reports
//! each OD's score.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discover;
pub mod monitor;
pub mod monotone;

pub use discover::{
    discover_fds, discover_ods, discover_ods_naive, try_discover_ods, Discovery, DiscoveryConfig,
    DiscoveryEngine,
};
pub use monitor::{Monitor, MonitorReport, OdStatus, SubscriptionId};
pub use monotone::{derived_column_ods, monotonicity, DerivedColumn, Monotonicity};
