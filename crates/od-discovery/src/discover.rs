//! Discovery of order dependencies (and functional dependencies) that hold on a
//! given relation instance.
//!
//! The paper closes by pointing at OD discovery as follow-on work; this module
//! provides a bounded-width discovery pass that later became its own research
//! line.  Candidates are enumerated over normalized attribute lists up to a
//! configurable length and pruned with the inference engine: a candidate that
//! is already implied by previously confirmed ODs is never validated against
//! the data.  Two validation engines are available behind
//! [`DiscoveryConfig::engine`]:
//!
//! * [`DiscoveryEngine::SetBased`] (the default) — the FASTOD-style engine of
//!   the `od-setbased` crate: each candidate is decomposed into canonical
//!   set-based statements that are validated with stripped partitions and
//!   memoized **across** candidates, so the data is touched once per distinct
//!   statement rather than once per candidate;
//! * [`DiscoveryEngine::Naive`] — the original list-enumeration path
//!   re-sorting the relation per candidate with the `O(n log n)` split/swap
//!   checker of `od-core`; kept as the oracle for differential tests.
//!
//! Both engines see the same candidate stream and the same implication
//! pruning, so they return the same minimal OD set — a property the
//! differential proptests in `tests/differential.rs` enforce.

use od_core::check::{check_fd, od_holds};
use od_core::{AttrId, FunctionalDependency, OrderDependency, Relation};
use od_infer::witness::enumerate_lists;
use od_infer::{Decider, OdSet};
use od_setbased::SetBasedEngine;

/// Which validation engine a discovery run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscoveryEngine {
    /// Partition-backed set-based validation with cross-candidate memoization
    /// (the `od-setbased` crate).
    #[default]
    SetBased,
    /// Sort-based validation of every candidate (the oracle path).
    Naive,
}

/// Configuration of a discovery run.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Maximum length of the left-hand side list.
    pub max_lhs: usize,
    /// Maximum length of the right-hand side list.
    pub max_rhs: usize,
    /// Skip candidates already implied by the confirmed ODs (axiom-based pruning).
    pub prune_implied: bool,
    /// Validation engine.
    pub engine: DiscoveryEngine,
    /// Shard large partition scans across threads (set-based engine only).
    pub parallel: bool,
}

impl Default for DiscoveryConfig {
    /// Width 2/2 so the lattice is actually exercised (the original default of
    /// `max_lhs = 1` never produced a composite left-hand side), with the
    /// set-based engine and implication pruning on.
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs: 2,
            max_rhs: 2,
            prune_implied: true,
            engine: DiscoveryEngine::SetBased,
            parallel: false,
        }
    }
}

/// Result of a discovery run.
#[derive(Debug, Clone, Default)]
pub struct Discovery {
    /// Minimal (non-implied) ODs confirmed on the instance.
    pub ods: Vec<OrderDependency>,
    /// Number of candidates enumerated.
    pub candidates: usize,
    /// Number of candidates validated against the data: every non-pruned
    /// candidate for the naive engine; only candidates whose canonical
    /// statements were not already memoized for the set-based engine.
    pub validated: usize,
    /// Canonical statements validated against the data (set-based engine;
    /// equal to `validated` for the naive engine, whose unit of data work is
    /// the whole candidate).
    pub statement_validations: usize,
}

/// Discover ODs holding on the relation, bounded by the configuration.
pub fn discover_ods(rel: &Relation, config: DiscoveryConfig) -> Discovery {
    match config.engine {
        DiscoveryEngine::Naive => {
            let mut check = |od: &OrderDependency| (od_holds(rel, od), true);
            let mut result = run_discovery(rel, config, &mut check);
            result.statement_validations = result.validated;
            result
        }
        DiscoveryEngine::SetBased => {
            let threads = if config.parallel {
                od_setbased::parallel::available_threads()
            } else {
                1
            };
            let mut engine = SetBasedEngine::with_threads(rel, threads);
            let mut check = |od: &OrderDependency| {
                let before = engine.data_validations();
                let holds = engine.od_holds(od);
                (holds, engine.data_validations() > before)
            };
            let mut result = run_discovery(rel, config, &mut check);
            result.statement_validations = engine.data_validations();
            result
        }
    }
}

/// Discover ODs with the original sort-per-candidate engine (the oracle used
/// by differential tests and the benchmark baseline).
pub fn discover_ods_naive(rel: &Relation, config: DiscoveryConfig) -> Discovery {
    discover_ods(
        rel,
        DiscoveryConfig {
            engine: DiscoveryEngine::Naive,
            ..config
        },
    )
}

/// The shared enumeration / pruning loop.  `check` answers whether a candidate
/// holds and whether answering touched the data.
fn run_discovery(
    rel: &Relation,
    config: DiscoveryConfig,
    check: &mut dyn FnMut(&OrderDependency) -> (bool, bool),
) -> Discovery {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let lhs_lists = enumerate_lists(&universe, config.max_lhs);
    let rhs_lists = enumerate_lists(&universe, config.max_rhs);
    let mut found = OdSet::new();
    // The decider over `found` is rebuilt lazily, only after `found` grows.
    let mut decider: Option<Decider> = None;
    let mut result = Discovery::default();

    for lhs in &lhs_lists {
        for rhs in &rhs_lists {
            if rhs.is_empty() {
                continue;
            }
            let candidate = OrderDependency::new(lhs.clone(), rhs.clone());
            result.candidates += 1;
            if candidate.is_syntactically_trivial() {
                continue;
            }
            if config.prune_implied
                && decider
                    .get_or_insert_with(|| Decider::new(&found))
                    .implies(&candidate)
            {
                continue;
            }
            let (holds, touched_data) = check(&candidate);
            if touched_data {
                result.validated += 1;
            }
            if holds {
                found.add_od(candidate.clone());
                decider = None;
                result.ods.push(candidate);
            }
        }
    }
    result
}

/// Discover functional dependencies with a single right-hand-side attribute and
/// left-hand sides up to `max_lhs` attributes.
pub fn discover_fds(rel: &Relation, max_lhs: usize) -> Vec<FunctionalDependency> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut out = Vec::new();
    for lhs in enumerate_lists(&universe, max_lhs) {
        if lhs.is_empty() {
            continue;
        }
        // Set semantics: only consider ascending enumerations to avoid duplicates.
        let sorted: Vec<AttrId> = lhs.to_set().into_iter().collect();
        if sorted != lhs.iter().collect::<Vec<_>>() {
            continue;
        }
        for &rhs in &universe {
            if lhs.contains(rhs) {
                continue;
            }
            let fd = FunctionalDependency::new(lhs.to_set(), [rhs]);
            if check_fd(rel, &fd).is_ok() {
                out.push(fd);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::fixtures;

    #[test]
    fn discovers_the_example_5_ods() {
        let rel = fixtures::example_5_taxes();
        let d = discover_ods(&rel, DiscoveryConfig::default());
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let expect = OrderDependency::new(vec![income], vec![bracket]);
        assert!(
            d.ods.contains(&expect),
            "income ↦ bracket should be discovered: {:?}",
            d.ods
        );
        assert!(d
            .ods
            .contains(&OrderDependency::new(vec![income], vec![payable])));
        // The converse is not discovered (brackets repeat across incomes).
        assert!(!d
            .ods
            .contains(&OrderDependency::new(vec![bracket], vec![income])));
        assert!(d.validated <= d.candidates);
    }

    #[test]
    fn pruning_reduces_validation_work_without_losing_coverage() {
        // Pruning mechanics are engine-independent; pin the naive engine so
        // "validated" counts candidates, the unit the assertion is about.
        let naive = DiscoveryConfig {
            engine: DiscoveryEngine::Naive,
            ..Default::default()
        };
        let rel = fixtures::example_5_taxes();
        let with = discover_ods(
            &rel,
            DiscoveryConfig {
                prune_implied: true,
                ..naive
            },
        );
        let without = discover_ods(
            &rel,
            DiscoveryConfig {
                prune_implied: false,
                ..naive
            },
        );
        assert!(with.validated < without.validated);
        // Everything found without pruning is implied by the pruned discovery result.
        let m = OdSet::from_ods(with.ods.clone());
        let d = Decider::new(&m);
        for od in &without.ods {
            assert!(
                d.implies(od),
                "{od} must be implied by the pruned discovery result"
            );
        }
    }

    #[test]
    fn discovered_ods_hold_and_non_discovered_do_not_appear() {
        let rel = fixtures::figure_1_relation();
        let d = discover_ods(
            &rel,
            DiscoveryConfig {
                max_lhs: 1,
                max_rhs: 1,
                prune_implied: false,
                ..Default::default()
            },
        );
        for od in &d.ods {
            assert!(od_holds(&rel, od));
        }
    }

    #[test]
    fn engines_agree_on_the_fixtures() {
        for rel in [fixtures::example_5_taxes(), fixtures::figure_1_relation()] {
            for prune in [true, false] {
                let config = DiscoveryConfig {
                    prune_implied: prune,
                    ..Default::default()
                };
                let set_based = discover_ods(&rel, config);
                let naive = discover_ods_naive(&rel, config);
                assert_eq!(
                    set_based.ods, naive.ods,
                    "engines must find the same minimal ODs"
                );
                assert_eq!(set_based.candidates, naive.candidates);
            }
        }
    }

    #[test]
    fn set_based_engine_touches_less_data_than_naive() {
        let rel = fixtures::example_5_taxes();
        let set_based = discover_ods(&rel, DiscoveryConfig::default());
        let naive = discover_ods_naive(&rel, DiscoveryConfig::default());
        assert!(
            set_based.validated < naive.validated,
            "set-based candidates touching data ({}) must undercut naive ({})",
            set_based.validated,
            naive.validated
        );
    }

    #[test]
    fn parallel_discovery_matches_serial() {
        let rel = fixtures::example_5_taxes();
        let serial = discover_ods(&rel, DiscoveryConfig::default());
        let parallel = discover_ods(
            &rel,
            DiscoveryConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.ods, parallel.ods);
    }

    #[test]
    fn fd_discovery_finds_the_tax_schedule() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let fds = discover_fds(&rel, 1);
        assert!(fds.contains(&FunctionalDependency::new([income], [bracket])));
        assert!(!fds.contains(&FunctionalDependency::new([bracket], [income])));
    }
}
