//! Discovery of order dependencies (and functional dependencies) that hold on a
//! given relation instance.
//!
//! The paper closes by pointing at OD discovery as follow-on work; this module
//! provides a bounded-width discovery pass that later became its own research
//! line.  Candidates are enumerated over normalized attribute lists up to a
//! configurable length and pruned with the inference engine: a candidate that
//! is already implied by previously confirmed ODs is never validated against
//! the data.  Two validation engines are available behind
//! [`DiscoveryConfig::engine`]:
//!
//! * [`DiscoveryEngine::SetBased`] (the default) — the FASTOD-style node-based
//!   lattice of the `od-setbased` crate: one profile pass
//!   ([`od_setbased::discover_statements`], bounded by
//!   [`DiscoveryConfig::max_context`]) validates every surviving canonical
//!   statement with stripped partitions, then candidates are answered from the
//!   profile scan-free; candidates whose statements reach beyond the bound
//!   fall back to a demand-driven [`od_setbased::SetBasedEngine`] seeded with
//!   the profile's verdicts;
//! * [`DiscoveryEngine::Naive`] — the original list-enumeration path
//!   re-sorting the relation per candidate with the `O(n log n)` split/swap
//!   checker of `od-core`; kept as the oracle for differential tests.
//!
//! Both engines see the same candidate stream and the same implication
//! pruning, so they return the same minimal OD set — a property the
//! differential proptests in `tests/differential.rs` enforce.

use od_core::check::{check_fd, od_holds, od_removal_count};
use od_core::{AttrId, FunctionalDependency, OrderDependency, Relation};
use od_infer::witness::enumerate_lists;
use od_infer::{Decider, OdSet};
use od_optimizer::OdRegistry;
use od_setbased::{
    discover_statements, error_budget, translate_od, LatticeConfig, LatticeStats, SetBasedEngine,
};

/// Which validation engine a discovery run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscoveryEngine {
    /// Partition-backed set-based validation with cross-candidate memoization
    /// (the `od-setbased` crate).
    #[default]
    SetBased,
    /// Sort-based validation of every candidate (the oracle path).
    Naive,
}

/// Configuration of a discovery run.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Maximum length of the left-hand side list.
    pub max_lhs: usize,
    /// Maximum length of the right-hand side list.
    pub max_rhs: usize,
    /// Skip candidates already implied by the confirmed ODs (axiom-based
    /// pruning; only sound — and only applied — when `epsilon == 0`, since
    /// implication combines premises whose removal sets may differ).
    pub prune_implied: bool,
    /// Validation engine.
    pub engine: DiscoveryEngine,
    /// Shard large partition scans across threads (set-based engine only).
    pub parallel: bool,
    /// `g3` error threshold: accept a candidate when each of its canonical
    /// statements holds after removing at most `⌊ε·n⌋` tuples.  `0.0` (the
    /// default) is exact discovery — bit-identical to the pre-approximation
    /// behavior; `1.0` accepts everything.
    pub epsilon: f64,
    /// Context bound passed through to the node-based lattice profile the
    /// set-based engine runs first (see [`od_setbased::discover_statements`]).
    /// The effective depth is clamped to what the configured candidate widths
    /// can actually use — `max(max_lhs, max_lhs + max_rhs − 2)` — and
    /// candidates whose canonical statements reach beyond it fall back to
    /// demand-driven validation, so lowering this trades profile coverage for
    /// per-candidate work without changing the result.
    pub max_context: usize,
    /// Worker *processes* for the lattice profile's data plane (set-based
    /// engine only; 0 = in-process).  Passed through to
    /// [`od_setbased::LatticeConfig::workers`]: the hosting binary must call
    /// [`od_setbased::maybe_run_worker`] first thing in `main`.  Results are
    /// bit-identical on every worker count.
    pub workers: usize,
}

impl Default for DiscoveryConfig {
    /// Width 2/2 so the lattice is actually exercised (the original default of
    /// `max_lhs = 1` never produced a composite left-hand side), with the
    /// set-based engine, implication pruning, and the width-4 lattice bound on
    /// (the bitset node store made the fourth level interactive; the effective
    /// depth still clamps to what the candidate widths can use).
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs: 2,
            max_rhs: 2,
            prune_implied: true,
            engine: DiscoveryEngine::SetBased,
            parallel: false,
            epsilon: 0.0,
            max_context: 4,
            workers: 0,
        }
    }
}

/// Result of a discovery run.
#[derive(Debug, Clone, Default)]
pub struct Discovery {
    /// Minimal (non-implied) ODs confirmed on the instance.
    pub ods: Vec<OrderDependency>,
    /// Per-OD `g3` error scores, aligned with [`Self::ods`]: the worst
    /// canonical statement's removal fraction (all zeros in exact mode).
    /// Always ≤ the configured ε; statements resolved by axiom inheritance
    /// report their premise's removal, so a score can overstate — but never
    /// understate — the statement-level error, which itself lower-bounds the
    /// OD-level `g3` (the true value lies between the max and the sum of the
    /// statement removals).
    pub errors: Vec<f64>,
    /// Number of candidates enumerated.
    pub candidates: usize,
    /// Number of candidates validated against the data *during enumeration*:
    /// every non-pruned candidate for the naive engine; only fallback
    /// candidates reaching beyond the lattice profile's context bound for the
    /// set-based engine (profile-answered candidates resolve scan-free).
    pub validated: usize,
    /// Canonical statements validated against the data: the lattice profile's
    /// scans plus any fallback engine scans for the set-based engine; equal to
    /// `validated` for the naive engine, whose unit of data work is the whole
    /// candidate.
    pub statement_validations: usize,
    /// Resolution counters of the node-based lattice profile the set-based
    /// engine ran first (`None` for the naive engine).
    pub lattice_stats: Option<LatticeStats>,
}

impl Discovery {
    /// Install the discovered ODs into an [`OdRegistry`] for `table`, making
    /// the optimizer's sort-elimination and rewrite machinery benefit from
    /// profiling without manual constraint declarations.
    ///
    /// Only ODs discovered with a zero error score are installed — an OD that
    /// merely *approximately* holds is not a sound rewrite license.  Returns
    /// the number installed.
    pub fn install_into(&self, registry: &mut OdRegistry, table: &str) -> usize {
        let mut installed = 0;
        for (od, &err) in self.ods.iter().zip(self.errors.iter()) {
            if err == 0.0 {
                registry.add_od(table, od.clone());
                installed += 1;
            }
        }
        installed
    }
}

/// Discover ODs holding on the relation, reporting schemas beyond the
/// 64-attribute [`od_core::AttrSet`] domain as a
/// [`CoreError::AttrSetOverflow`](od_core::CoreError::AttrSetOverflow)
/// instead of panicking.
pub fn try_discover_ods(
    rel: &Relation,
    config: DiscoveryConfig,
) -> Result<Discovery, od_core::CoreError> {
    if rel.schema().arity() > od_core::AttrSet::MAX_ATTRS {
        return Err(od_core::CoreError::AttrSetOverflow(
            rel.schema().arity() as u32 - 1,
        ));
    }
    Ok(discover_ods(rel, config))
}

/// Discover ODs holding on the relation, bounded by the configuration.
///
/// Panics when the schema exceeds the 64-attribute bitset
/// [`od_core::AttrSet`] domain (candidate translation packs every attribute
/// set into a `u64` mask); use [`try_discover_ods`] where such schemas are
/// reachable.
pub fn discover_ods(rel: &Relation, config: DiscoveryConfig) -> Discovery {
    let budget = error_budget(rel.len(), config.epsilon);
    match config.engine {
        DiscoveryEngine::Naive => {
            let mut check = |od: &OrderDependency| {
                if budget == 0 {
                    let holds = od_holds(rel, od);
                    (holds, true, if holds { 0.0 } else { 1.0 })
                } else {
                    // Approximate oracle path: measure each canonical
                    // statement with the sort-based evidence checker (both
                    // list ODs of a compatibility have the same removal count
                    // by symmetry, so one representative suffices).
                    let worst = translate_od(od)
                        .iter()
                        .map(|stmt| od_removal_count(rel, &stmt.as_list_ods()[0]))
                        .max()
                        .unwrap_or(0);
                    (
                        worst <= budget,
                        true,
                        worst as f64 / rel.len().max(1) as f64,
                    )
                }
            };
            let mut result = run_discovery(rel, config, &mut check);
            result.statement_validations = result.validated;
            result
        }
        DiscoveryEngine::SetBased => {
            let threads = if config.parallel {
                od_setbased::parallel::available_threads()
            } else {
                1
            };
            // The widest statement context any enumerated candidate can
            // produce: |set(X)| for a constancy, |prefix(X) ∪ prefix(Y)| for a
            // compatibility — so profiling deeper than this is pure waste.
            let needed = config
                .max_lhs
                .max((config.max_lhs + config.max_rhs).saturating_sub(2));
            let depth = config.max_context.min(needed);
            let profile = discover_statements(
                rel,
                &LatticeConfig {
                    max_context: depth,
                    use_decider: true,
                    threads,
                    epsilon: config.epsilon,
                    workers: config.workers,
                },
            );
            // Fallback for candidates whose statements reach beyond the
            // profile (only possible when `config.max_context` undercuts the
            // candidate widths): a demand-driven engine seeded with the
            // profile's verdicts.
            let mut engine: Option<SetBasedEngine> = None;
            let n = rel.len();
            let mut check = |od: &OrderDependency| {
                let stmts = translate_od(od);
                if stmts.iter().all(|s| s.context().len() <= depth) {
                    let mut worst = 0usize;
                    for stmt in &stmts {
                        match profile.removal_upper_bound(stmt) {
                            Some(removal) => worst = worst.max(removal),
                            None => return (false, false, 1.0),
                        }
                    }
                    (true, false, worst as f64 / n.max(1) as f64)
                } else {
                    let engine = engine.get_or_insert_with(|| {
                        let mut e = SetBasedEngine::with_budget(rel, threads, budget);
                        e.adopt_profile(&profile);
                        e
                    });
                    let before = engine.data_validations();
                    let verdict = engine.od_verdict(od);
                    (
                        verdict.within(budget),
                        engine.data_validations() > before,
                        verdict.g3(n),
                    )
                }
            };
            let mut result = run_discovery(rel, config, &mut check);
            result.statement_validations =
                profile.stats.validated + engine.as_ref().map_or(0, |e| e.data_validations());
            result.lattice_stats = Some(profile.stats);
            result
        }
    }
}

/// Discover ODs with the original sort-per-candidate engine (the oracle used
/// by differential tests and the benchmark baseline).
pub fn discover_ods_naive(rel: &Relation, config: DiscoveryConfig) -> Discovery {
    discover_ods(
        rel,
        DiscoveryConfig {
            engine: DiscoveryEngine::Naive,
            ..config
        },
    )
}

/// The shared enumeration / pruning loop.  `check` answers whether a candidate
/// holds (within the error budget), whether answering touched the data, and
/// the candidate's `g3` error score.
fn run_discovery(
    rel: &Relation,
    config: DiscoveryConfig,
    check: &mut dyn FnMut(&OrderDependency) -> (bool, bool, f64),
) -> Discovery {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let lhs_lists = enumerate_lists(&universe, config.max_lhs);
    let rhs_lists = enumerate_lists(&universe, config.max_rhs);
    let mut found = OdSet::new();
    // The decider over `found` is rebuilt lazily, only after `found` grows.
    // Implication pruning combines many confirmed premises, so it is only
    // sound (and only used) in exact mode.
    let prune_implied = config.prune_implied && config.epsilon <= 0.0;
    let mut decider: Option<Decider> = None;
    let mut result = Discovery::default();

    for lhs in &lhs_lists {
        for rhs in &rhs_lists {
            if rhs.is_empty() {
                continue;
            }
            let candidate = OrderDependency::new(lhs.clone(), rhs.clone());
            result.candidates += 1;
            if candidate.is_syntactically_trivial() {
                continue;
            }
            if prune_implied
                && decider
                    .get_or_insert_with(|| Decider::new(&found))
                    .implies(&candidate)
            {
                continue;
            }
            let (holds, touched_data, error) = check(&candidate);
            if touched_data {
                result.validated += 1;
            }
            if holds {
                found.add_od(candidate.clone());
                decider = None;
                result.ods.push(candidate);
                result.errors.push(error);
            }
        }
    }
    result
}

/// Discover functional dependencies with a single right-hand-side attribute and
/// left-hand sides up to `max_lhs` attributes.
pub fn discover_fds(rel: &Relation, max_lhs: usize) -> Vec<FunctionalDependency> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut out = Vec::new();
    for lhs in enumerate_lists(&universe, max_lhs) {
        if lhs.is_empty() {
            continue;
        }
        // Set semantics: only consider ascending enumerations to avoid duplicates.
        let sorted: Vec<AttrId> = lhs.to_set().into_iter().collect();
        if sorted != lhs.iter().collect::<Vec<_>>() {
            continue;
        }
        for &rhs in &universe {
            if lhs.contains(rhs) {
                continue;
            }
            let fd = FunctionalDependency::new(lhs.to_set(), [rhs]);
            if check_fd(rel, &fd).is_ok() {
                out.push(fd);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::fixtures;

    #[test]
    fn discovers_the_example_5_ods() {
        let rel = fixtures::example_5_taxes();
        let d = discover_ods(&rel, DiscoveryConfig::default());
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let expect = OrderDependency::new(vec![income], vec![bracket]);
        assert!(
            d.ods.contains(&expect),
            "income ↦ bracket should be discovered: {:?}",
            d.ods
        );
        assert!(d
            .ods
            .contains(&OrderDependency::new(vec![income], vec![payable])));
        // The converse is not discovered (brackets repeat across incomes).
        assert!(!d
            .ods
            .contains(&OrderDependency::new(vec![bracket], vec![income])));
        assert!(d.validated <= d.candidates);
    }

    #[test]
    fn pruning_reduces_validation_work_without_losing_coverage() {
        // Pruning mechanics are engine-independent; pin the naive engine so
        // "validated" counts candidates, the unit the assertion is about.
        let naive = DiscoveryConfig {
            engine: DiscoveryEngine::Naive,
            ..Default::default()
        };
        let rel = fixtures::example_5_taxes();
        let with = discover_ods(
            &rel,
            DiscoveryConfig {
                prune_implied: true,
                ..naive
            },
        );
        let without = discover_ods(
            &rel,
            DiscoveryConfig {
                prune_implied: false,
                ..naive
            },
        );
        assert!(with.validated < without.validated);
        // Everything found without pruning is implied by the pruned discovery result.
        let m = OdSet::from_ods(with.ods.clone());
        let d = Decider::new(&m);
        for od in &without.ods {
            assert!(
                d.implies(od),
                "{od} must be implied by the pruned discovery result"
            );
        }
    }

    #[test]
    fn discovered_ods_hold_and_non_discovered_do_not_appear() {
        let rel = fixtures::figure_1_relation();
        let d = discover_ods(
            &rel,
            DiscoveryConfig {
                max_lhs: 1,
                max_rhs: 1,
                prune_implied: false,
                ..Default::default()
            },
        );
        for od in &d.ods {
            assert!(od_holds(&rel, od));
        }
    }

    #[test]
    fn engines_agree_on_the_fixtures() {
        for rel in [fixtures::example_5_taxes(), fixtures::figure_1_relation()] {
            for prune in [true, false] {
                let config = DiscoveryConfig {
                    prune_implied: prune,
                    ..Default::default()
                };
                let set_based = discover_ods(&rel, config);
                let naive = discover_ods_naive(&rel, config);
                assert_eq!(
                    set_based.ods, naive.ods,
                    "engines must find the same minimal ODs"
                );
                assert_eq!(set_based.candidates, naive.candidates);
            }
        }
    }

    #[test]
    fn set_based_engine_touches_less_data_than_naive() {
        let rel = fixtures::example_5_taxes();
        let set_based = discover_ods(&rel, DiscoveryConfig::default());
        let naive = discover_ods_naive(&rel, DiscoveryConfig::default());
        assert!(
            set_based.validated < naive.validated,
            "set-based candidates touching data ({}) must undercut naive ({})",
            set_based.validated,
            naive.validated
        );
    }

    #[test]
    fn parallel_discovery_matches_serial() {
        let rel = fixtures::example_5_taxes();
        let serial = discover_ods(&rel, DiscoveryConfig::default());
        let parallel = discover_ods(
            &rel,
            DiscoveryConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.ods, parallel.ods);
    }

    #[test]
    fn exact_discovery_reports_zero_errors() {
        let rel = fixtures::example_5_taxes();
        let d = discover_ods(&rel, DiscoveryConfig::default());
        assert_eq!(d.ods.len(), d.errors.len());
        assert!(d.errors.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn approximate_discovery_recovers_dirtied_ods() {
        // A perfect income ↦ bracket relation with one corrupted row in fifty:
        // exact discovery loses the OD, a 5% threshold recovers it with a
        // non-zero error score, and ε = 1.0 accepts every candidate.
        let mut schema = od_core::Schema::new("dirty");
        let income = schema.add_attr("income");
        let bracket = schema.add_attr("bracket");
        let mut rows: Vec<Vec<od_core::Value>> = (0..50i64)
            .map(|i| vec![od_core::Value::Int(i), od_core::Value::Int(i / 10)])
            .collect();
        rows[25][1] = od_core::Value::Int(-7);
        let rel = od_core::Relation::from_rows(schema, rows).unwrap();
        let od = OrderDependency::new(vec![income], vec![bracket]);

        let exact = discover_ods(&rel, DiscoveryConfig::default());
        assert!(!exact.ods.contains(&od));

        let approx = discover_ods(
            &rel,
            DiscoveryConfig {
                epsilon: 0.05,
                ..Default::default()
            },
        );
        let pos = approx
            .ods
            .iter()
            .position(|o| o == &od)
            .expect("ε = 5% recovers income ↦ bracket");
        assert!(approx.errors[pos] > 0.0 && approx.errors[pos] <= 0.05);

        let everything = discover_ods(
            &rel,
            DiscoveryConfig {
                epsilon: 1.0,
                ..Default::default()
            },
        );
        // ε = 1 accepts candidates exact discovery rejects outright.
        assert!(everything
            .ods
            .contains(&OrderDependency::new(vec![bracket], vec![income])));
        assert!(everything.ods.len() > approx.ods.len());
    }

    #[test]
    fn engines_agree_on_approximate_discovery() {
        let mut schema = od_core::Schema::new("dirty");
        schema.add_attr("a");
        schema.add_attr("b");
        schema.add_attr("c");
        let mut rows: Vec<Vec<od_core::Value>> = (0..30i64)
            .map(|i| {
                vec![
                    od_core::Value::Int(i),
                    od_core::Value::Int(i * 2),
                    od_core::Value::Int(i % 5),
                ]
            })
            .collect();
        rows[4][1] = od_core::Value::Int(999);
        rows[19][2] = od_core::Value::Int(-3);
        let rel = od_core::Relation::from_rows(schema, rows).unwrap();
        for epsilon in [0.0, 0.1, 0.35] {
            let config = DiscoveryConfig {
                epsilon,
                ..Default::default()
            };
            let set_based = discover_ods(&rel, config);
            let naive = discover_ods_naive(&rel, config);
            assert_eq!(set_based.ods, naive.ods, "ε = {epsilon}");
            assert_eq!(set_based.ods.len(), set_based.errors.len());
        }
    }

    #[test]
    fn install_into_feeds_the_optimizer_registry() {
        let rel = fixtures::example_5_taxes();
        let d = discover_ods(&rel, DiscoveryConfig::default());
        let mut registry = OdRegistry::new();
        let installed = d.install_into(&mut registry, rel.schema().name());
        assert_eq!(installed, d.ods.len(), "exact discovery installs all ODs");
        assert_eq!(registry.ods(rel.schema().name()).len(), installed);
        // The registry now answers the sort-elimination question the paper
        // opens with: a stream ordered by income satisfies ORDER BY bracket.
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        assert!(registry.order_satisfies(
            s.name(),
            &od_core::AttrList::new([income]),
            &od_core::AttrList::new([bracket]),
        ));
        // Approximate ODs are NOT installed: only zero-error entries license
        // rewrites.
        let mut dirty_registry = OdRegistry::new();
        let approx = Discovery {
            ods: vec![OrderDependency::new(vec![bracket], vec![income])],
            errors: vec![0.02],
            ..Default::default()
        };
        assert_eq!(approx.install_into(&mut dirty_registry, s.name()), 0);
        assert_eq!(dirty_registry.ods(s.name()).len(), 0);
    }

    #[test]
    fn oversized_schemas_are_reported_not_panicked() {
        let mut schema = od_core::Schema::new("wide");
        for i in 0..70 {
            schema.add_attr(format!("c{i}"));
        }
        let rel = od_core::Relation::from_rows(schema, Vec::<Vec<od_core::Value>>::new()).unwrap();
        assert!(matches!(
            try_discover_ods(&rel, DiscoveryConfig::default()),
            Err(od_core::CoreError::AttrSetOverflow(_))
        ));
        // Within the bitset domain the fallible entry answers normally.
        let rel = fixtures::example_5_taxes();
        let d = try_discover_ods(&rel, DiscoveryConfig::default()).unwrap();
        assert!(!d.ods.is_empty());
    }

    #[test]
    fn fd_discovery_finds_the_tax_schedule() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let fds = discover_fds(&rel, 1);
        assert!(fds.contains(&FunctionalDependency::new([income], [bracket])));
        assert!(!fds.contains(&FunctionalDependency::new([bracket], [income])));
    }
}
