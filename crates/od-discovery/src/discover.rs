//! Discovery of order dependencies (and functional dependencies) that hold on a
//! given relation instance.
//!
//! The paper closes by pointing at OD discovery as follow-on work; this module
//! provides a bounded-width discovery pass that later became its own research
//! line.  Candidates are enumerated over normalized attribute lists up to a
//! configurable length, validated with the `O(n log n)` split/swap checker of
//! `od-core`, and pruned with the inference engine: a candidate that is already
//! implied by previously confirmed ODs is never validated against the data.

use od_core::check::{check_fd, od_holds};
use od_core::{AttrId, FunctionalDependency, OrderDependency, Relation};
use od_infer::witness::enumerate_lists;
use od_infer::{Decider, OdSet};

/// Configuration of a discovery run.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Maximum length of the left-hand side list.
    pub max_lhs: usize,
    /// Maximum length of the right-hand side list.
    pub max_rhs: usize,
    /// Skip candidates already implied by the confirmed ODs (axiom-based pruning).
    pub prune_implied: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig { max_lhs: 1, max_rhs: 2, prune_implied: true }
    }
}

/// Result of a discovery run.
#[derive(Debug, Clone, Default)]
pub struct Discovery {
    /// Minimal (non-implied) ODs confirmed on the instance.
    pub ods: Vec<OrderDependency>,
    /// Number of candidates enumerated.
    pub candidates: usize,
    /// Number of candidates validated against the data (not pruned).
    pub validated: usize,
}

/// Discover ODs holding on the relation, bounded by the configuration.
pub fn discover_ods(rel: &Relation, config: DiscoveryConfig) -> Discovery {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let lhs_lists = enumerate_lists(&universe, config.max_lhs);
    let rhs_lists = enumerate_lists(&universe, config.max_rhs);
    let mut found = OdSet::new();
    let mut result = Discovery::default();

    for lhs in &lhs_lists {
        for rhs in &rhs_lists {
            if rhs.is_empty() {
                continue;
            }
            let candidate = OrderDependency::new(lhs.clone(), rhs.clone());
            result.candidates += 1;
            if candidate.is_syntactically_trivial() {
                continue;
            }
            if config.prune_implied && Decider::new(&found).implies(&candidate) {
                continue;
            }
            result.validated += 1;
            if od_holds(rel, &candidate) {
                found.add_od(candidate.clone());
                result.ods.push(candidate);
            }
        }
    }
    result
}

/// Discover functional dependencies with a single right-hand-side attribute and
/// left-hand sides up to `max_lhs` attributes.
pub fn discover_fds(rel: &Relation, max_lhs: usize) -> Vec<FunctionalDependency> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut out = Vec::new();
    for lhs in enumerate_lists(&universe, max_lhs) {
        if lhs.is_empty() {
            continue;
        }
        // Set semantics: only consider ascending enumerations to avoid duplicates.
        let sorted: Vec<AttrId> = lhs.to_set().into_iter().collect();
        if sorted != lhs.iter().collect::<Vec<_>>() {
            continue;
        }
        for &rhs in &universe {
            if lhs.contains(rhs) {
                continue;
            }
            let fd = FunctionalDependency::new(lhs.to_set(), [rhs]);
            if check_fd(rel, &fd).is_ok() {
                out.push(fd);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::fixtures;

    #[test]
    fn discovers_the_example_5_ods() {
        let rel = fixtures::example_5_taxes();
        let d = discover_ods(&rel, DiscoveryConfig::default());
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let expect = OrderDependency::new(vec![income], vec![bracket]);
        assert!(d.ods.contains(&expect), "income ↦ bracket should be discovered: {:?}", d.ods);
        assert!(d.ods.contains(&OrderDependency::new(vec![income], vec![payable])));
        // The converse is not discovered (brackets repeat across incomes).
        assert!(!d.ods.contains(&OrderDependency::new(vec![bracket], vec![income])));
        assert!(d.validated <= d.candidates);
    }

    #[test]
    fn pruning_reduces_validation_work_without_losing_coverage() {
        let rel = fixtures::example_5_taxes();
        let with = discover_ods(&rel, DiscoveryConfig { prune_implied: true, ..Default::default() });
        let without =
            discover_ods(&rel, DiscoveryConfig { prune_implied: false, ..Default::default() });
        assert!(with.validated < without.validated);
        // Everything found without pruning is implied by what was found with pruning.
        let m = OdSet::from_ods(with.ods.clone());
        let d = Decider::new(&m);
        for od in &without.ods {
            assert!(d.implies(od), "{od} must be implied by the pruned discovery result");
        }
    }

    #[test]
    fn discovered_ods_hold_and_non_discovered_do_not_appear() {
        let rel = fixtures::figure_1_relation();
        let d = discover_ods(&rel, DiscoveryConfig { max_lhs: 1, max_rhs: 1, prune_implied: false });
        for od in &d.ods {
            assert!(od_holds(&rel, od));
        }
    }

    #[test]
    fn fd_discovery_finds_the_tax_schedule() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let fds = discover_fds(&rel, 1);
        assert!(fds.contains(&FunctionalDependency::new([income], [bracket])));
        assert!(!fds.contains(&FunctionalDependency::new([bracket], [income])));
    }
}
