//! Monotonicity analysis of derived-column expressions.
//!
//! Section 2.2 (and reference \[12\], the DB2 generated-columns work) observes that
//! ODs can be *derived automatically* when a column is computed from another by a
//! monotone expression — e.g. `G = A/100 + A - 3` is non-decreasing in `A`, so
//! `[A] ↦ [G]` holds by construction.  [`monotonicity`] performs that analysis
//! over the engine's [`Expr`] AST and [`derived_column_ods`] turns the result
//! into OD statements.

use od_core::{AttrId, OrderDependency, Value};
use od_engine::Expr;

/// Monotonicity of an expression with respect to one input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonicity {
    /// Non-decreasing in the column.
    Increasing,
    /// Non-increasing in the column.
    Decreasing,
    /// Does not depend on the column.
    Constant,
    /// Unknown / not monotone.
    Unknown,
}

impl Monotonicity {
    fn negate(self) -> Monotonicity {
        match self {
            Monotonicity::Increasing => Monotonicity::Decreasing,
            Monotonicity::Decreasing => Monotonicity::Increasing,
            other => other,
        }
    }

    fn combine_add(self, other: Monotonicity) -> Monotonicity {
        use Monotonicity::*;
        match (self, other) {
            (Constant, x) | (x, Constant) => x,
            (Increasing, Increasing) => Increasing,
            (Decreasing, Decreasing) => Decreasing,
            _ => Unknown,
        }
    }
}

/// Determine the monotonicity of `expr` with respect to column `col`.
///
/// The analysis is conservative: `Unknown` is returned whenever monotonicity
/// cannot be established structurally (e.g. multiplication of two column-
/// dependent factors, comparisons, or division by a column).
pub fn monotonicity(expr: &Expr, col: AttrId) -> Monotonicity {
    use Monotonicity::*;
    match expr {
        Expr::Column(a) => {
            if *a == col {
                Increasing
            } else {
                Unknown
            }
        }
        Expr::Literal(_) => Constant,
        Expr::Add(a, b) => monotonicity(a, col).combine_add(monotonicity(b, col)),
        Expr::Sub(a, b) => monotonicity(a, col).combine_add(monotonicity(b, col).negate()),
        Expr::Mul(a, b) | Expr::Div(a, b) => {
            // Monotone only when one side is a non-negative (for Mul) or positive
            // (for Div) literal and the other side is monotone.
            let scale = |lit: &Expr, operand: &Expr| -> Monotonicity {
                match lit {
                    Expr::Literal(v) => match v.as_float() {
                        Some(x) if x > 0.0 => monotonicity(operand, col),
                        Some(x) if x == 0.0 && matches!(expr, Expr::Mul(..)) => Constant,
                        Some(_) => monotonicity(operand, col).negate(),
                        None => Unknown,
                    },
                    _ => Unknown,
                }
            };
            match (&**a, &**b) {
                (Expr::Literal(_), _) if matches!(expr, Expr::Mul(..)) => scale(a, b),
                (_, Expr::Literal(_)) => scale(b, a),
                _ => Unknown,
            }
        }
        _ => Unknown,
    }
}

/// A derived (generated) column definition: a name and its defining expression.
#[derive(Debug, Clone)]
pub struct DerivedColumn {
    /// Name of the generated column.
    pub name: String,
    /// Position the generated column will occupy.
    pub id: AttrId,
    /// Defining expression over the base columns.
    pub expr: Expr,
}

/// ODs that hold by construction between base columns and derived columns:
/// `[base] ↦ [derived]` when the defining expression is non-decreasing in
/// `base`, and `[derived] ↦ [base]`... is *not* emitted (monotonicity alone does
/// not make the mapping invertible).
pub fn derived_column_ods(columns: &[DerivedColumn], base_cols: &[AttrId]) -> Vec<OrderDependency> {
    let mut out = Vec::new();
    for dc in columns {
        for &base in base_cols {
            if monotonicity(&dc.expr, base) == Monotonicity::Increasing {
                out.push(OrderDependency::new(vec![base], vec![dc.id]));
            }
        }
    }
    out
}

/// Evaluate a derived column over a tuple (convenience used by tests and the
/// experiments to materialize generated columns).
pub fn evaluate_derived(dc: &DerivedColumn, tuple: &od_core::Tuple) -> Value {
    dc.expr.eval(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{Relation, Schema};

    /// The related-work example: G = A/100 + A - 3 is monotone in A.
    fn g_expr(a: AttrId) -> Expr {
        Expr::Add(
            Box::new(Expr::Div(
                Box::new(Expr::col(a)),
                Box::new(Expr::lit(100i64)),
            )),
            Box::new(Expr::Sub(Box::new(Expr::col(a)), Box::new(Expr::lit(3i64)))),
        )
    }

    #[test]
    fn the_db2_generated_column_example_is_increasing() {
        let a = AttrId(0);
        assert_eq!(monotonicity(&g_expr(a), a), Monotonicity::Increasing);
        assert_eq!(monotonicity(&g_expr(a), AttrId(1)), Monotonicity::Unknown);
    }

    #[test]
    fn scaling_and_negation() {
        let a = AttrId(0);
        let neg = Expr::Mul(Box::new(Expr::lit(-2i64)), Box::new(Expr::col(a)));
        assert_eq!(monotonicity(&neg, a), Monotonicity::Decreasing);
        let scaled = Expr::Div(Box::new(Expr::col(a)), Box::new(Expr::lit(4i64)));
        assert_eq!(monotonicity(&scaled, a), Monotonicity::Increasing);
        let constant = Expr::lit(7i64);
        assert_eq!(monotonicity(&constant, a), Monotonicity::Constant);
        let non_mono = Expr::Mul(Box::new(Expr::col(a)), Box::new(Expr::col(a)));
        assert_eq!(monotonicity(&non_mono, a), Monotonicity::Unknown);
    }

    #[test]
    fn emitted_ods_hold_on_materialized_data() {
        let a = AttrId(0);
        let dc = DerivedColumn {
            name: "g".into(),
            id: AttrId(1),
            expr: g_expr(a),
        };
        let ods = derived_column_ods(std::slice::from_ref(&dc), &[a]);
        assert_eq!(ods.len(), 1);
        // Materialize a relation (a, g) and verify the OD empirically.
        let mut schema = Schema::new("generated");
        schema.add_attr("a");
        schema.add_attr("g");
        let mut rel = Relation::new(schema);
        for v in [-250i64, -3, 0, 7, 100, 99_999] {
            let base = vec![Value::Int(v)];
            let g = evaluate_derived(&dc, &base);
            rel.push(vec![Value::Int(v), g]).unwrap();
        }
        assert!(od_holds(&rel, &ods[0]));
    }

    #[test]
    fn subtraction_of_column_from_literal_is_decreasing() {
        let a = AttrId(0);
        let e = Expr::Sub(Box::new(Expr::lit(10i64)), Box::new(Expr::col(a)));
        assert_eq!(monotonicity(&e, a), Monotonicity::Decreasing);
    }
}
