//! Counters, gauges, log-bucketed histograms, and the recorder registry.
//!
//! The hot path is lock-cheap: metric handles are `Arc<AtomicU64>` (or an
//! `Arc<Histogram>` of atomics) resolved once through a short read-locked map
//! lookup and then updated with plain `fetch_add`/`fetch_max`.  The free
//! functions ([`add`], [`gauge_set`], [`gauge_max`], [`record`]) route through
//! the ambient recorder: a thread-local scoped override when one is installed
//! via [`scoped`], otherwise the process-wide default registry.
//!
//! Determinism contract: counters, gauges, and histograms must only ever be
//! fed *deterministic counts* (rows, nodes, classes, cache events) — never
//! wall-clock readings.  Durations flow through the separate
//! [`Recorder::record_duration`] channel and are kept out of the canonical
//! (diffable) report section by construction.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Number of histogram buckets: one for the value `0` plus one per power of
/// two (`[2^(i-1), 2^i - 1]` for `i` in `1..=64`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Map a value to its histogram bucket index.
///
/// Bucket `0` holds exactly the value `0`; bucket `i` (for `i >= 1`) holds the
/// half-open power-of-two range `[2^(i-1), 2^i - 1]`, so `1 -> 1`, `2..=3 ->
/// 2`, and `u64::MAX -> 64`.  The bounds are fixed, which makes bucket counts
/// bit-identical across runs and thread counts.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lower, upper)` value bounds of a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// A log-bucketed histogram with fixed power-of-two bucket bounds.
///
/// All updates are relaxed atomic adds; `count` and `sum` track the exact
/// number and total of recorded values (both deterministic when the recorded
/// values are).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot the non-empty buckets as `(bucket_lower_bound, count)` pairs,
    /// in ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bounds(i).0, n))
            })
            .collect()
    }

    /// Snapshot into an owned, lock-free view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Owned point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded observations.
    pub sum: u64,
    /// `(bucket_lower_bound, count)` pairs for the non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// Aggregate wall-clock time attributed to one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationStat {
    /// Number of completed spans with this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// Sink for metric updates.
///
/// [`Registry`] is the real implementation; [`NoopRecorder`] discards
/// everything (used to prove the instrumentation can be compiled out or
/// disabled at zero cost).
pub trait Recorder: Send + Sync {
    /// Add `delta` to the named counter.
    fn add(&self, name: &str, delta: u64);
    /// Set the named gauge to `value`.
    fn gauge_set(&self, name: &str, value: u64);
    /// Raise the named gauge to at least `value`.
    fn gauge_max(&self, name: &str, value: u64);
    /// Record one observation into the named histogram.
    fn record(&self, name: &str, value: u64);
    /// Record a completed span's wall-clock duration under its path.  Kept in
    /// a separate channel so durations can never leak into the deterministic
    /// report section.
    fn record_duration(&self, path: &str, nanos: u64);
}

/// A recorder that discards every update.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: u64) {}
    fn gauge_max(&self, _name: &str, _value: u64) {}
    fn record(&self, _name: &str, _value: u64) {}
    fn record_duration(&self, _path: &str, _nanos: u64) {}
}

/// Named-metric registry backing the [`Recorder`] trait with atomics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    durations: Mutex<HashMap<String, DurationStat>>,
}

fn intern<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics map poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut write = map.write().expect("metrics map poisoned");
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Handle to the named counter, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        intern(&self.counters, name)
    }

    /// Handle to the named gauge, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        intern(&self.gauges, name)
    }

    /// Handle to the named histogram, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Current value of a counter (zero if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics map poisoned")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge (zero if it was never touched).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges
            .read()
            .expect("metrics map poisoned")
            .get(name)
            .map_or(0, |g| g.load(Ordering::Relaxed))
    }

    /// Owned point-in-time view of every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let durations = self
            .durations
            .lock()
            .expect("duration map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            durations,
        }
    }
}

impl Recorder for Registry {
    fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.gauge(name).fetch_max(value, Ordering::Relaxed);
    }

    fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    fn record_duration(&self, path: &str, nanos: u64) {
        let mut map = self.durations.lock().expect("duration map poisoned");
        let stat = map.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_nanos += nanos;
        stat.max_nanos = stat.max_nanos.max(nanos);
    }
}

/// Owned point-in-time view of a whole [`Registry`], with sorted keys so it
/// feeds straight into canonical reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span duration aggregates by path (non-deterministic by nature).
    pub durations: BTreeMap<String, DurationStat>,
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default registry.
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// The ambient recorder for this thread: the innermost [`scoped`] override if
/// one is active, otherwise the [`global`] registry.
pub fn recorder() -> Arc<Registry> {
    SCOPED.with(|stack| stack.borrow().last().map(Arc::clone).unwrap_or_else(global))
}

/// Run `f` with `registry` installed as this thread's ambient recorder.
///
/// Scopes nest (innermost wins) and are restored even on unwind.  Recording
/// happens on the calling thread only, so orchestrator-threaded code (the
/// lattice and stream layers aggregate worker results before recording) is
/// fully captured; worker threads spawned inside `f` fall back to the global
/// registry.
pub fn scoped<T>(registry: Arc<Registry>, f: impl FnOnce() -> T) -> T {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPED.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    SCOPED.with(|stack| stack.borrow_mut().push(registry));
    let _pop = Pop;
    f()
}

/// Add `delta` to the named counter on the ambient recorder.
#[inline]
pub fn add(name: &str, delta: u64) {
    recorder().add(name, delta);
}

/// Set the named gauge on the ambient recorder.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    recorder().gauge_set(name, value);
}

/// Raise the named gauge on the ambient recorder to at least `value`.
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    recorder().gauge_max(name, value);
}

/// Record one histogram observation on the ambient recorder.
#[inline]
pub fn record(name: &str, value: u64) {
    recorder().record(name, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every bucket's bounds map back to that bucket, and adjacent buckets
        // tile the u64 domain with no gaps.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(hi + 1, bucket_bounds(i + 1).0);
            }
        }
    }

    #[test]
    fn histogram_records_edges() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0); // 0 + 1 + MAX wraps around to 0
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (1u64 << 63, 1)]);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let reg = Registry::new();
        reg.add("c", 2);
        reg.add("c", 3);
        reg.gauge_set("g", 7);
        reg.gauge_max("g", 5);
        reg.gauge_max("g", 11);
        reg.record("h", 4);
        reg.record_duration("root/leaf", 1_000);
        reg.record_duration("root/leaf", 3_000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 11);
        assert_eq!(snap.histograms["h"].count, 1);
        let d = snap.durations["root/leaf"];
        assert_eq!((d.count, d.total_nanos, d.max_nanos), (2, 4_000, 3_000));
    }

    #[test]
    fn scoped_overrides_global_and_nests() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        scoped(Arc::clone(&outer), || {
            add("x", 1);
            scoped(Arc::clone(&inner), || add("x", 10));
            add("x", 2);
        });
        assert_eq!(outer.counter_value("x"), 3);
        assert_eq!(inner.counter_value("x"), 10);
    }
}
