//! # od-obs — zero-dependency observability for the OD reproduction
//!
//! A small tracing + metrics layer (std only; the build environment has no
//! crates.io access, so `tracing`/`metrics` are out of reach) with three
//! pieces:
//!
//! 1. **Metrics** ([`metrics`]): a [`Recorder`] trait over named atomic
//!    counters, gauges, and log-bucketed [`Histogram`]s with *fixed*
//!    power-of-two bucket bounds, so bucket counts are bit-identical across
//!    runs and thread counts.  A process-wide default [`Registry`] serves the
//!    free functions [`add`]/[`gauge_set`]/[`gauge_max`]/[`record`]; tests and
//!    experiment harnesses isolate themselves with [`scoped`] registries.
//! 2. **Spans** ([`span`](mod@span)): RAII guards forming a hierarchical phase
//!    profile (`discovery/level2/refine`, `stream/batch/patch`, …).  Span
//!    durations are wall clock and therefore *never* enter the deterministic
//!    report section.
//! 3. **Canonical JSON reports** ([`json`], [`report`]): [`MetricsReport`]
//!    serializes with sorted keys and fixed nine-decimal float rounding to
//!    `BENCH_<experiment>.json` artifacts whose deterministic section diffs
//!    clean in CI.
//!
//! ```
//! use od_obs::{scoped, Registry, MetricsReport};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! scoped(Arc::clone(&registry), || {
//!     let _phase = od_obs::span("discovery");
//!     od_obs::add("discovery.nodes_created", 42);
//!     od_obs::record("lattice.partition_classes", 17);
//! });
//! let report = MetricsReport::from_snapshot("demo", &registry.snapshot());
//! assert!(report.deterministic_json().contains("nodes_created"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use json::Json;
pub use metrics::{
    add, bucket_bounds, bucket_index, gauge_max, gauge_set, global, record, recorder, scoped,
    DurationStat, Histogram, HistogramSnapshot, MetricsSnapshot, NoopRecorder, Recorder, Registry,
    HISTOGRAM_BUCKETS,
};
pub use report::{histogram_json, peak_rss_kib, MetricsReport};
pub use span::{span, timed, SpanGuard};
