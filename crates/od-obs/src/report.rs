//! `MetricsReport`: a two-section experiment artifact with canonical-JSON
//! serialization.
//!
//! The **deterministic** section carries counts, bucket histograms, and
//! lattice/stream statistics — values that are bit-identical across runs and
//! thread counts.  The **nondeterministic** section carries wall-clock span
//! durations and peak RSS.  [`MetricsReport::write_to`] emits two files per
//! experiment: the full `BENCH_<experiment>.json` and a
//! `BENCH_<experiment>.deterministic.json` twin holding only the diffable
//! section, so CI can assert byte-identity with plain `diff`.

use crate::json::Json;
use crate::metrics::{DurationStat, HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A named experiment's metrics, split into deterministic and
/// non-deterministic sections.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Experiment identifier (e.g. `e13`); names the artifact file.
    pub experiment: String,
    /// Values that must be byte-identical across runs and thread counts.
    pub deterministic: BTreeMap<String, Json>,
    /// Wall-clock durations, peak RSS, and other run-local values.
    pub nondeterministic: BTreeMap<String, Json>,
}

impl MetricsReport {
    /// Create an empty report for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        MetricsReport {
            experiment: experiment.into(),
            ..MetricsReport::default()
        }
    }

    /// Build a report from a registry snapshot: counters, gauges, and
    /// histograms land in the deterministic section; span durations land in
    /// the non-deterministic section.
    pub fn from_snapshot(experiment: impl Into<String>, snapshot: &MetricsSnapshot) -> Self {
        let mut report = MetricsReport::new(experiment);
        if !snapshot.counters.is_empty() {
            report.deterministic.insert(
                "counters".to_string(),
                Json::Object(
                    snapshot
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            );
        }
        if !snapshot.gauges.is_empty() {
            report.deterministic.insert(
                "gauges".to_string(),
                Json::Object(
                    snapshot
                        .gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            );
        }
        if !snapshot.histograms.is_empty() {
            report.deterministic.insert(
                "histograms".to_string(),
                Json::Object(
                    snapshot
                        .histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), histogram_json(v)))
                        .collect(),
                ),
            );
        }
        if !snapshot.durations.is_empty() {
            report.nondeterministic.insert(
                "durations".to_string(),
                Json::Object(
                    snapshot
                        .durations
                        .iter()
                        .map(|(k, v)| (k.clone(), duration_json(v)))
                        .collect(),
                ),
            );
        }
        report
    }

    /// Insert a value into the deterministic section.
    pub fn set_deterministic(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        self.deterministic.insert(key.into(), value.into());
    }

    /// Insert a value into the non-deterministic section.
    pub fn set_nondeterministic(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        self.nondeterministic.insert(key.into(), value.into());
    }

    /// Attach this process's peak resident set size (Linux `VmHWM`) to the
    /// non-deterministic section, when available.
    pub fn with_peak_rss(mut self) -> Self {
        if let Some(kib) = peak_rss_kib() {
            self.nondeterministic
                .insert("peak_rss_kib".to_string(), Json::UInt(kib));
        }
        self
    }

    /// The full two-section report as a canonical JSON value.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "experiment".to_string(),
                Json::from(self.experiment.as_str()),
            ),
            (
                "deterministic".to_string(),
                Json::Object(self.deterministic.clone()),
            ),
            (
                "nondeterministic".to_string(),
                Json::Object(self.nondeterministic.clone()),
            ),
        ])
    }

    /// Canonical JSON of the full report (both sections), newline-terminated.
    pub fn canonical_json(&self) -> String {
        let mut s = self.to_json().canonical();
        s.push('\n');
        s
    }

    /// Canonical JSON of the deterministic section only (plus the experiment
    /// id), newline-terminated.  Byte-identical across runs and thread counts
    /// by contract.
    pub fn deterministic_json(&self) -> String {
        let json = Json::object([
            (
                "experiment".to_string(),
                Json::from(self.experiment.as_str()),
            ),
            (
                "deterministic".to_string(),
                Json::Object(self.deterministic.clone()),
            ),
        ]);
        let mut s = json.canonical();
        s.push('\n');
        s
    }

    /// Write `BENCH_<experiment>.json` (full report) and
    /// `BENCH_<experiment>.deterministic.json` (diffable twin) under `dir`,
    /// creating the directory if needed.  Returns the two paths.
    pub fn write_to(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let full = dir.join(format!("BENCH_{}.json", self.experiment));
        let det = dir.join(format!("BENCH_{}.deterministic.json", self.experiment));
        std::fs::write(&full, self.canonical_json())?;
        std::fs::write(&det, self.deterministic_json())?;
        Ok((full, det))
    }
}

/// Histogram snapshot as canonical JSON: exact `count`/`sum` plus sparse
/// `[bucket_lower_bound, count]` pairs.
pub fn histogram_json(snap: &HistogramSnapshot) -> Json {
    Json::object([
        ("count".to_string(), Json::UInt(snap.count)),
        ("sum".to_string(), Json::UInt(snap.sum)),
        (
            "buckets".to_string(),
            Json::Array(
                snap.buckets
                    .iter()
                    .map(|(lo, n)| Json::Array(vec![Json::UInt(*lo), Json::UInt(*n)]))
                    .collect(),
            ),
        ),
    ])
}

fn duration_json(stat: &DurationStat) -> Json {
    Json::object([
        ("count".to_string(), Json::UInt(stat.count)),
        ("total_nanos".to_string(), Json::UInt(stat.total_nanos)),
        ("max_nanos".to_string(), Json::UInt(stat.max_nanos)),
    ])
}

/// Peak resident set size of this process in KiB, read from
/// `/proc/self/status` (`VmHWM`).  `None` off Linux or if unreadable.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Recorder as _, Registry};

    #[test]
    fn report_sections_split_durations_from_counts() {
        let reg = Registry::new();
        reg.add("nodes", 5);
        reg.gauge_max("peak", 3);
        reg.record("class_size", 4);
        reg.record_duration("discovery/level1", 12_345);
        let report = MetricsReport::from_snapshot("e0", &reg.snapshot());
        let det = report.deterministic_json();
        assert!(det.contains(r#""nodes":5"#));
        assert!(det.contains(r#""peak":3"#));
        assert!(det.contains(r#""class_size""#));
        assert!(!det.contains("nanos"), "durations leaked: {det}");
        let full = report.canonical_json();
        assert!(full.contains(r#""total_nanos":12345"#));
    }

    #[test]
    fn artifacts_are_byte_identical_across_writes() {
        let reg = Registry::new();
        reg.add("c", 1);
        let report = MetricsReport::from_snapshot("e99", &reg.snapshot());
        let dir = std::env::temp_dir().join("od-obs-report-test");
        let (full_a, det_a) = report.write_to(&dir).unwrap();
        let a = std::fs::read(&det_a).unwrap();
        let (_, det_b) = report.write_to(&dir).unwrap();
        let b = std::fs::read(&det_b).unwrap();
        assert_eq!(a, b);
        assert!(full_a.file_name().unwrap().to_str().unwrap() == "BENCH_e99.json");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kib().unwrap() > 0);
        }
    }
}
