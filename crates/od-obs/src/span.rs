//! RAII span guards forming a hierarchical phase profile.
//!
//! [`span`] pushes a name onto a thread-local stack and returns a guard; when
//! the guard drops, the elapsed wall-clock time is recorded on the ambient
//! recorder under the `/`-joined path of every open span on this thread, e.g.
//! `discovery/level2/refine` or `stream/batch/patch`.  Durations travel
//! through [`Recorder::record_duration`](crate::Recorder::record_duration)
//! only, so they land in the *non-deterministic* report section and never
//! perturb the canonical (diffable) output.

use crate::metrics::{recorder, Registry};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard for an open span; records its duration on drop.
#[derive(Debug)]
pub struct SpanGuard {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

/// Open a span named `name` nested under this thread's currently open spans.
pub fn span(name: impl AsRef<str>) -> SpanGuard {
    let name = name.as_ref();
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        registry: recorder(),
        path,
        start: Instant::now(),
    }
}

impl SpanGuard {
    /// Full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are expected to drop in LIFO order (they are scope
            // guards); tolerate out-of-order drops by removing this exact
            // path rather than blindly popping.
            if let Some(pos) = stack.iter().rposition(|p| p == &self.path) {
                stack.remove(pos);
            }
        });
        use crate::metrics::Recorder as _;
        self.registry.record_duration(&self.path, nanos);
    }
}

/// Time `f` under a span named `label`; returns `f`'s output and the elapsed
/// wall-clock time.  The duration is also recorded on the ambient recorder
/// under the span's hierarchical path.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> (T, Duration) {
    let guard = span(label);
    let out = f();
    let elapsed = guard.elapsed();
    drop(guard);
    (out, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::scoped;

    #[test]
    fn spans_nest_into_paths() {
        let reg = Arc::new(Registry::new());
        scoped(Arc::clone(&reg), || {
            let outer = span("discovery");
            assert_eq!(outer.path(), "discovery");
            {
                let level = span("level1");
                assert_eq!(level.path(), "discovery/level1");
                let leaf = span("refine");
                assert_eq!(leaf.path(), "discovery/level1/refine");
            }
            let sibling = span("level2");
            assert_eq!(sibling.path(), "discovery/level2");
        });
        let snap = reg.snapshot();
        assert_eq!(snap.durations["discovery/level1/refine"].count, 1);
        assert_eq!(snap.durations["discovery/level1"].count, 1);
        assert_eq!(snap.durations["discovery/level2"].count, 1);
        assert_eq!(snap.durations["discovery"].count, 1);
    }

    #[test]
    fn timed_returns_output_and_records() {
        let reg = Arc::new(Registry::new());
        let (value, elapsed) = scoped(Arc::clone(&reg), || timed("work", || 41 + 1));
        assert_eq!(value, 42);
        let stat = reg.snapshot().durations["work"];
        assert_eq!(stat.count, 1);
        // The guard records at drop, a hair after `elapsed` was sampled.
        assert!(stat.total_nanos >= u64::try_from(elapsed.as_nanos()).unwrap());
    }
}
