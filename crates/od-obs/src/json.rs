//! Canonical JSON values and serialization.
//!
//! The emitter produces *canonical* JSON so that two runs producing the same
//! logical report yield byte-identical artifacts (diffable in CI):
//!
//! * object keys are sorted (objects are [`BTreeMap`]s, so this is structural),
//! * integers print without sign-padding or exponents,
//! * floats print with **fixed nine-decimal rounding** (`{:.9}`), never in
//!   exponent notation; non-finite floats serialize as `null`,
//! * strings escape `"`/`\\` and control characters only, and
//! * there is no insignificant whitespace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value with canonical (sorted-key, fixed-rounding) serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, printed in full.
    UInt(u64),
    /// Signed integer, printed in full.
    Int(i64),
    /// Float, printed with fixed nine-decimal rounding.
    Float(f64),
    /// String with minimal escaping.
    Str(String),
    /// Array; element order is preserved.
    Array(Vec<Json>),
    /// Object; keys serialize in sorted (BTreeMap) order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Serialize to the canonical compact form.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.9}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from an iterator of `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_serialize_sorted() {
        let mut map = BTreeMap::new();
        map.insert("zeta".to_string(), Json::from(1u64));
        map.insert("alpha".to_string(), Json::from(2u64));
        map.insert("mid".to_string(), Json::from("x"));
        let json = Json::Object(map);
        assert_eq!(json.canonical(), r#"{"alpha":2,"mid":"x","zeta":1}"#);
    }

    #[test]
    fn floats_round_to_nine_decimals() {
        assert_eq!(Json::Float(0.1).canonical(), "0.100000000");
        assert_eq!(Json::Float(1.0 / 3.0).canonical(), "0.333333333");
        assert_eq!(Json::Float(-2.5).canonical(), "-2.500000000");
        assert_eq!(Json::Float(f64::NAN).canonical(), "null");
        assert_eq!(Json::Float(f64::INFINITY).canonical(), "null");
    }

    #[test]
    fn integers_print_in_full() {
        assert_eq!(Json::UInt(u64::MAX).canonical(), "18446744073709551615");
        assert_eq!(Json::Int(i64::MIN).canonical(), "-9223372036854775808");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").canonical(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn nested_structures_are_compact() {
        let json = Json::object([
            ("arr".to_string(), Json::from(vec![1u64, 2, 3])),
            (
                "obj".to_string(),
                Json::object([("k".to_string(), Json::Null)]),
            ),
        ]);
        assert_eq!(json.canonical(), r#"{"arr":[1,2,3],"obj":{"k":null}}"#);
    }
}
